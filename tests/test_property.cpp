// Cross-module property tests: invariants that tie upload accounting,
// presence masks, aggregation, and the strategies together, plus
// failure-injection cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <span>

#include "baselines/fedavg.hpp"
#include "baselines/unit_mask.hpp"
#include "common/check.hpp"
#include "compress/compressed_strategy.hpp"
#include "compress/dgc.hpp"
#include "compress/quantize.hpp"
#include "compress/stc.hpp"
#include "core/drop_pattern.hpp"
#include "core/fedbiad_strategy.hpp"
#include "data/image_synth.hpp"
#include "data/partition.hpp"
#include "data/text_synth.hpp"
#include "fl/aggregate.hpp"
#include "fl/simulation.hpp"
#include "nn/lstm_lm_model.hpp"
#include "nn/conv_model.hpp"
#include "nn/mlp_model.hpp"
#include "nn/rnn_lm_model.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "wire/accounting.hpp"
#include "wire/reader.hpp"
#include "wire/writer.hpp"

namespace fedbiad {
namespace {

/// Runs one client and then performs the server-side decode step exactly as
/// the engines do on upload arrival, so tests can inspect the dense view.
template <typename Strat>
fl::ClientOutcome run_decoded(Strat& strat, fl::ClientContext& ctx) {
  auto out = strat.run_client(ctx);
  fl::decode_outcome(strat, ctx.model.store(), out);
  return out;
}

// Presence mask and upload accounting must agree: bytes = 4·(#present
// coordinates) + packed pattern bits, for any rate and eligibility.
class PatternAccounting : public ::testing::TestWithParam<double> {};

TEST_P(PatternAccounting, BytesMatchPresence) {
  const double rate = GetParam();
  nn::LstmLmModel model({.vocab = 37, .embed = 8, .hidden = 12, .layers = 2});
  const auto& store = model.store();
  for (const auto& eligible :
       {core::eligible_all(), core::eligible_fc_conv(),
        core::eligible_non_recurrent()}) {
    tensor::Rng rng(11);
    const auto p = core::DropPattern::sample(store, rate, eligible, rng);
    std::vector<std::uint8_t> present(store.size(), 1);
    p.mark_presence(store, present);
    const auto present_count = static_cast<std::uint64_t>(
        std::count(present.begin(), present.end(), std::uint8_t{1}));
    EXPECT_EQ(p.upload_bytes(store),
              present_count * 4 + (store.droppable_rows() + 7) / 8);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, PatternAccounting,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75));

TEST(AggregateProperty, SingleClientIsIdentityOnPresentCoords) {
  tensor::Rng rng(5);
  std::vector<float> global(64);
  for (auto& g : global) g = static_cast<float>(rng.normal(0, 1));
  const auto before = global;
  fl::ClientOutcome o;
  o.samples = 3;
  o.values.resize(64);
  o.present = wire::Bitset(64);
  for (std::size_t i = 0; i < 64; ++i) {
    o.values[i] = static_cast<float>(rng.normal(0, 1));
    o.present.set(i, rng.bernoulli(0.5));
  }
  std::vector<fl::ClientOutcome> outs{o};
  fl::aggregate(global, outs, fl::AggregationRule::kPerCoordinateNormalized);
  for (std::size_t i = 0; i < 64; ++i) {
    if (o.present[i]) {
      EXPECT_FLOAT_EQ(global[i], o.values[i]);
    } else {
      EXPECT_FLOAT_EQ(global[i], before[i]);
    }
  }
}

TEST(AggregateProperty, MaskedAverageEqualsManualEquationTen) {
  // Random instance of eq. 10 verified against a direct computation.
  tensor::Rng rng(7);
  const std::size_t n = 40;
  std::vector<float> global(n, 0.0F);
  std::vector<fl::ClientOutcome> outs(3);
  double total_w = 0.0;
  for (std::size_t k = 0; k < outs.size(); ++k) {
    outs[k].samples = k + 1;
    total_w += static_cast<double>(k + 1);
    outs[k].values.resize(n);
    outs[k].present = wire::Bitset(n);
    for (std::size_t i = 0; i < n; ++i) {
      outs[k].present.set(i, rng.bernoulli(0.6));
      outs[k].values[i] =
          outs[k].present[i] ? static_cast<float>(rng.normal(0, 1)) : 0.0F;
    }
  }
  fl::aggregate(global, outs, fl::AggregationRule::kMaskedAverage);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (const auto& o : outs) {
      acc += static_cast<double>(o.samples) * o.values[i];  // zeros included
    }
    EXPECT_NEAR(global[i], acc / total_w, 1e-5);
  }
}

TEST(FedBiadProperty, DroppedUnitWeightsNeverTrain) {
  // A row dropped for the whole round must come back bit-identical in the
  // uploaded variational parameters.
  auto cfg = data::ImageSynthConfig::mnist_like(31);
  cfg.train_samples = 64;
  cfg.test_samples = 8;
  const auto ds = data::make_image_datasets(cfg);
  nn::MlpModel model({.input = 784, .hidden = 16, .classes = 10});
  tensor::Rng init(1);
  model.init_params(init);
  std::vector<float> global(model.store().params().begin(),
                            model.store().params().end());
  std::vector<std::size_t> shard(ds.train->size());
  for (std::size_t i = 0; i < shard.size(); ++i) shard[i] = i;
  fl::TrainSettings settings;
  settings.local_iterations = 50;  // tau=60 → no resampling mid-round
  settings.batch_size = 8;
  settings.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};
  core::FedBiadStrategy strat({.dropout_rate = 0.5,
                               .tau = 60,
                               .stage_boundary = 5,
                               .sample_posterior = false});
  fl::ClientContext ctx{.client_id = 0,
                        .round = 1,
                        .model = model,
                        .global_params = global,
                        .dataset = *ds.train,
                        .shard = shard,
                        .settings = settings,
                        .rng = tensor::Rng(2)};
  auto out = run_decoded(strat, ctx);
  const auto& store = model.store();
  // Dropped rows are not transmitted at all, so after per-coordinate
  // aggregation of this single client the global keeps its previous values
  // there bit for bit — the wire-level form of "dropped rows never train".
  std::vector<float> aggregated = global;
  fl::aggregate(aggregated, std::vector<fl::ClientOutcome>{out},
                fl::AggregationRule::kPerCoordinateNormalized);
  bool any_dropped = false;
  for (std::size_t j = 0; j < store.droppable_rows(); ++j) {
    const auto ref = store.droppable_row(j);
    const auto& grp = store.group(ref.group);
    const std::size_t begin = grp.offset + ref.row * grp.row_len;
    if (out.present[begin]) continue;
    any_dropped = true;
    for (std::size_t i = begin; i < begin + grp.row_len; ++i) {
      ASSERT_EQ(out.values[i], 0.0F) << "dropped row " << j << " transmitted";
      ASSERT_EQ(aggregated[i], global[i]) << "dropped row " << j << " moved";
    }
  }
  EXPECT_TRUE(any_dropped);
}

TEST(FedBiadProperty, RunClientIsDeterministic) {
  auto cfg = data::ImageSynthConfig::mnist_like(37);
  cfg.train_samples = 64;
  cfg.test_samples = 8;
  const auto ds = data::make_image_datasets(cfg);
  std::vector<std::size_t> shard(ds.train->size());
  for (std::size_t i = 0; i < shard.size(); ++i) shard[i] = i;
  fl::TrainSettings settings;
  settings.local_iterations = 9;
  settings.batch_size = 8;
  settings.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};

  auto run_once = [&] {
    nn::MlpModel model({.input = 784, .hidden = 12, .classes = 10});
    tensor::Rng init(3);
    model.init_params(init);
    std::vector<float> global(model.store().params().begin(),
                              model.store().params().end());
    core::FedBiadStrategy strat(
        {.dropout_rate = 0.5, .tau = 2, .stage_boundary = 5});
    fl::ClientContext ctx{.client_id = 4,
                          .round = 1,
                          .model = model,
                          .global_params = global,
                          .dataset = *ds.train,
                          .shard = shard,
                          .settings = settings,
                          .rng = tensor::Rng(99)};
    return run_decoded(strat, ctx);
  };
  const auto a = run_once();
  const auto b = run_once();
  // The encoded buffers themselves must be byte-identical, not just their
  // decoded views.
  EXPECT_EQ(a.payload.bytes, b.payload.bytes);
  EXPECT_EQ(a.present, b.present);
  EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    ASSERT_FLOAT_EQ(a.values[i], b.values[i]);
  }
}

class WidthRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(WidthRatioSweep, SubmodelBytesMonotone) {
  const double ratio = GetParam();
  nn::LstmLmModel model({.vocab = 50, .embed = 16, .hidden = 16, .layers = 2});
  const auto plan = baselines::WidthPlan::for_lstm_lm(model);
  const auto bytes = plan.submodel_bytes(model.store(), ratio);
  const auto bytes_wider =
      plan.submodel_bytes(model.store(), std::min(1.0, ratio + 0.25));
  EXPECT_LE(bytes, bytes_wider);
  EXPECT_LE(bytes, core::dense_model_bytes(model.store()) + 8);
}

INSTANTIATE_TEST_SUITE_P(Ratios, WidthRatioSweep,
                         ::testing::Values(0.125, 0.25, 0.5, 0.75, 1.0));

TEST(ComposedProperty, EveryCompressorComposesWithFedBiad) {
  auto cfg = data::ImageSynthConfig::mnist_like(41);
  cfg.train_samples = 120;
  cfg.test_samples = 40;
  const auto ds = data::make_image_datasets(cfg);
  tensor::Rng prng(42);
  auto partition = data::partition_iid(ds.train->size(), 6, prng);
  auto factory = [] {
    return std::make_unique<nn::MlpModel>(
        nn::MlpConfig{.input = 784, .hidden = 12, .classes = 10});
  };
  fl::SimulationConfig sim_cfg;
  sim_cfg.rounds = 2;
  sim_cfg.selection_fraction = 0.5;
  sim_cfg.train.local_iterations = 4;
  sim_cfg.train.batch_size = 8;
  sim_cfg.train.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};
  sim_cfg.threads = 2;

  const std::vector<compress::CompressorPtr> compressors{
      std::make_shared<compress::DgcCompressor>(),
      std::make_shared<compress::StcCompressor>(),
      std::make_shared<compress::SignSgdCompressor>(),
      std::make_shared<compress::FedPaqCompressor>(),
  };
  for (const auto& comp : compressors) {
    auto inner = std::make_shared<core::FedBiadStrategy>(
        core::FedBiadConfig{.dropout_rate = 0.5,
                            .tau = 2,
                            .stage_boundary = 2,
                            .sample_posterior = false});
    auto composed = std::make_shared<compress::ComposedStrategy>(inner, comp);
    fl::Simulation sim(sim_cfg, factory, ds.train, ds.test, partition,
                       composed);
    const auto result = sim.run();
    ASSERT_EQ(result.rounds.size(), 2u) << comp->name();
    EXPECT_GT(result.rounds.front().uplink_bytes_total, 0u) << comp->name();
    // Composition can never cost more than the dropout upload it wraps.
    nn::MlpModel probe({.input = 784, .hidden = 12, .classes = 10});
    EXPECT_LT(result.mean_upload_bytes(),
              static_cast<double>(core::dense_model_bytes(probe.store())))
        << comp->name();
  }
}

TEST(TextSynthProperty, StructureProbControlsBigramFollowRate) {
  // The fraction of transitions following the topic permutation should
  // track structure_prob (up to chance collisions).
  for (const double sp : {0.2, 0.8}) {
    auto cfg = data::TextSynthConfig::ptb_like(51);
    cfg.vocab = 200;
    cfg.topics = 1;
    cfg.structure_prob = sp;
    cfg.train_sequences = 400;
    cfg.test_sequences = 10;
    const auto ds = data::make_text_datasets_iid(cfg, 1);
    // Reconstruct the permutation empirically: the most frequent successor
    // of each token is perm[token] when sp is large; instead we measure the
    // repeat rate of the modal successor, which grows with sp.
    std::vector<std::size_t> idx(ds.train->size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    const auto batch = ds.train->make_batch(idx);
    std::map<std::pair<int, int>, int> bigram;
    std::map<int, int> prev_count;
    for (std::size_t i = 0; i < batch.tokens.size(); ++i) {
      bigram[{batch.tokens[i], batch.targets[i]}]++;
      prev_count[batch.tokens[i]]++;
    }
    double modal_mass = 0.0;
    double total = 0.0;
    std::map<int, int> modal;
    for (const auto& [key, count] : bigram) {
      modal[key.first] = std::max(modal[key.first], count);
    }
    for (const auto& [tok, count] : prev_count) {
      if (count < 5) continue;
      modal_mass += modal[tok];
      total += count;
    }
    const double rate = modal_mass / total;
    if (sp > 0.5) {
      EXPECT_GT(rate, 0.6);
    } else {
      EXPECT_LT(rate, 0.6);
    }
  }
}

TEST(SimulationFailure, RejectsBadConfigurations) {
  auto cfg = data::ImageSynthConfig::mnist_like(61);
  cfg.train_samples = 20;
  cfg.test_samples = 4;
  const auto ds = data::make_image_datasets(cfg);
  auto factory = [] {
    return std::make_unique<nn::MlpModel>(
        nn::MlpConfig{.input = 784, .hidden = 4, .classes = 10});
  };
  fl::SimulationConfig sim_cfg;
  // Null strategy.
  EXPECT_THROW(fl::Simulation(sim_cfg, factory, ds.train, ds.test,
                              data::Partition{{0, 1}}, nullptr),
               CheckError);
  // Empty partition.
  EXPECT_THROW(fl::Simulation(sim_cfg, factory, ds.train, ds.test,
                              data::Partition{},
                              std::make_shared<baselines::FedAvgStrategy>()),
               CheckError);
  // All shards empty.
  fl::Simulation sim(sim_cfg, factory, ds.train, ds.test,
                     data::Partition{{}, {}},
                     std::make_shared<baselines::FedAvgStrategy>());
  EXPECT_THROW(sim.run(), CheckError);
}

TEST(SimulationFailure, SelectionSkipsEmptyShards) {
  auto cfg = data::ImageSynthConfig::mnist_like(67);
  cfg.train_samples = 40;
  cfg.test_samples = 8;
  const auto ds = data::make_image_datasets(cfg);
  auto factory = [] {
    return std::make_unique<nn::MlpModel>(
        nn::MlpConfig{.input = 784, .hidden = 4, .classes = 10});
  };
  // 4 clients, two of them empty; selecting half must still work.
  data::Partition partition(4);
  for (std::size_t i = 0; i < ds.train->size(); ++i) {
    partition[i % 2].push_back(i);
  }
  fl::SimulationConfig sim_cfg;
  sim_cfg.rounds = 2;
  sim_cfg.selection_fraction = 0.5;
  sim_cfg.train.local_iterations = 2;
  sim_cfg.train.batch_size = 4;
  sim_cfg.threads = 2;
  fl::Simulation sim(sim_cfg, factory, ds.train, ds.test, partition,
                     std::make_shared<baselines::FedAvgStrategy>());
  const auto result = sim.run();
  EXPECT_EQ(result.rounds.size(), 2u);
}


TEST(RnnLmProperty, TrainsAndSupportsFedBiadDropout) {
  // End-to-end federated dropout on the exact §III-A vanilla-RNN LM the
  // theory analyzes.
  auto cfg = data::TextSynthConfig::ptb_like(71);
  cfg.vocab = 50;
  cfg.train_sequences = 200;
  cfg.test_sequences = 40;
  cfg.seq_len = 6;
  const auto text = data::make_text_datasets_iid(cfg, 4);
  auto factory = [] {
    return std::make_unique<nn::RnnLmModel>(
        nn::RnnLmConfig{.vocab = 50, .embed = 12, .hidden = 16, .layers = 2});
  };
  fl::SimulationConfig sim_cfg;
  sim_cfg.rounds = 3;
  sim_cfg.selection_fraction = 0.5;
  sim_cfg.train.local_iterations = 6;
  sim_cfg.train.batch_size = 8;
  sim_cfg.train.topk = 3;
  sim_cfg.train.sgd = {.lr = 0.5F, .weight_decay = 0.0F, .clip_norm = 5.0F};
  sim_cfg.threads = 4;
  auto strategy = std::make_shared<core::FedBiadStrategy>(
      core::FedBiadConfig{.dropout_rate = 0.5,
                          .tau = 2,
                          .stage_boundary = 2,
                          .sample_posterior = false});
  fl::Simulation sim(sim_cfg, factory, text.train, text.test,
                     text.client_indices, strategy);
  const auto result = sim.run();
  ASSERT_EQ(result.rounds.size(), 3u);
  nn::RnnLmModel probe(
      {.vocab = 50, .embed = 12, .hidden = 16, .layers = 2});
  const auto dense = core::dense_model_bytes(probe.store());
  EXPECT_LT(result.mean_upload_bytes(), 0.6 * static_cast<double>(dense));
}

TEST(ConvProperty, FilterWiseDropoutEndToEnd) {
  // Paper §IV-C: CNN dropout is filter-wise. Run FedBIAD over a ConvModel
  // and check whole filters are dropped and upload accounting holds.
  auto cfg = data::ImageSynthConfig::mnist_like(73);
  cfg.train_samples = 80;
  cfg.test_samples = 16;
  cfg.height = 12;
  cfg.width = 12;
  const auto ds = data::make_image_datasets(cfg);
  nn::ConvModel model({.height = 12,
                       .width = 12,
                       .channels = 1,
                       .filters = 8,
                       .kernel = 3,
                       .classes = 10});
  tensor::Rng init(9);
  model.init_params(init);
  std::vector<float> global(model.store().params().begin(),
                            model.store().params().end());
  std::vector<std::size_t> shard(ds.train->size());
  for (std::size_t i = 0; i < shard.size(); ++i) shard[i] = i;
  fl::TrainSettings settings;
  settings.local_iterations = 4;
  settings.batch_size = 8;
  settings.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};
  core::FedBiadStrategy strat({.dropout_rate = 0.5,
                               .tau = 2,
                               .stage_boundary = 5,
                               .sample_posterior = false});
  fl::ClientContext ctx{.client_id = 0,
                        .round = 1,
                        .model = model,
                        .global_params = global,
                        .dataset = *ds.train,
                        .shard = shard,
                        .settings = settings,
                        .rng = tensor::Rng(10)};
  const auto out = run_decoded(strat, ctx);
  // Dropped filters are absent as whole rows (filter granularity).
  const auto& store = model.store();
  const auto& conv = store.group(model.conv_group());
  EXPECT_EQ(conv.kind, nn::GroupKind::kConvFilter);
  std::size_t dropped_filters = 0;
  for (std::size_t f = 0; f < conv.rows; ++f) {
    const std::size_t begin = conv.offset + f * conv.row_len;
    const bool absent = out.present[begin] == 0;
    for (std::size_t i = begin; i < begin + conv.row_len; ++i) {
      EXPECT_EQ(out.present[i], absent ? 0 : 1);
    }
    dropped_filters += absent ? 1 : 0;
  }
  EXPECT_EQ(dropped_filters, 4u);  // p=0.5 of 8 filters
}

// --- wire subsystem properties: primitive round trips, payload round trips
// over hostile value sets (NaN/Inf, ±0, ragged/all-dropped/all-kept/empty),
// and rejection of truncated or corrupted buffers without UB (the ubsan CI
// job runs these under -fsanitize=undefined) ---

/// A deliberately ragged layout: droppable groups of different row widths
/// around a non-droppable group.
nn::ParameterStore ragged_store() {
  nn::ParameterStore store;
  store.add_group("fc", nn::GroupKind::kDense, 4, 3, true);
  store.add_group("head", nn::GroupKind::kDense, 2, 5, false);
  store.add_group("conv", nn::GroupKind::kConvFilter, 5, 7, true);
  store.finalize();
  return store;
}

std::vector<float> hostile_values(std::size_t n, std::uint64_t seed) {
  tensor::Rng rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 7) {
      case 0:
        v[i] = std::numeric_limits<float>::quiet_NaN();
        break;
      case 1:
        v[i] = std::numeric_limits<float>::infinity();
        break;
      case 2:
        v[i] = -std::numeric_limits<float>::infinity();
        break;
      case 3:
        v[i] = -0.0F;
        break;
      default:
        v[i] = static_cast<float>(rng.normal(0, 1));
        break;
    }
  }
  return v;
}

void expect_bit_identical(std::span<const float> a, std::span<const float> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
              std::bit_cast<std::uint32_t>(b[i]))
        << "coordinate " << i;
  }
}

TEST(WirePrimitives, FixedWidthAndVarintRoundTrip) {
  wire::Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFU);
  w.u64(0x0123456789ABCDEFULL);
  w.f32(std::numeric_limits<float>::quiet_NaN());
  w.f64(-0.0);
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{16383}, std::uint64_t{16384},
        ~std::uint64_t{0}}) {
    w.varint(v);
  }
  const auto bytes = std::move(w).take();
  wire::Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFU);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(std::isnan(r.f32()));
  EXPECT_TRUE(std::signbit(r.f64()));
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{16383}, std::uint64_t{16384},
        ~std::uint64_t{0}}) {
    EXPECT_EQ(r.varint(), v);
  }
  r.expect_done();
}

TEST(WirePrimitives, ReaderRejectsTruncationAndBadVarints) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(wire::Reader(empty).u8(), wire::DecodeError);
  EXPECT_THROW(wire::Reader(empty).varint(), wire::DecodeError);
  const std::vector<std::uint8_t> three{1, 2, 3};
  EXPECT_THROW(wire::Reader(three).u32(), wire::DecodeError);
  // Continuation bit set on the last available byte.
  const std::vector<std::uint8_t> dangling{0x80};
  EXPECT_THROW(wire::Reader(dangling).varint(), wire::DecodeError);
  // 10-byte varint whose final byte overflows 64 bits.
  std::vector<std::uint8_t> overflow(10, 0x80);
  overflow[9] = 0x02;
  EXPECT_THROW(wire::Reader(overflow).varint(), wire::DecodeError);
  // Trailing garbage after a complete field.
  const std::vector<std::uint8_t> trailing{0x01, 0x02};
  wire::Reader r(trailing);
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), wire::DecodeError);
}

TEST(WirePrimitives, BitRunsRoundTripAcrossByteBoundaries) {
  tensor::Rng rng(77);
  std::vector<std::pair<std::uint64_t, unsigned>> runs;
  for (unsigned width = 1; width <= 64; ++width) {
    const std::uint64_t mask =
        width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
    runs.emplace_back(rng.next_u64() & mask, width);
  }
  wire::Writer w;
  {
    wire::BitWriter bw(w);
    for (const auto& [v, width] : runs) bw.bits(v, width);
  }
  const auto bytes = std::move(w).take();
  wire::Reader r(bytes);
  wire::BitReader br(r);
  for (const auto& [v, width] : runs) {
    ASSERT_EQ(br.bits(width), v) << "width " << width;
  }
  br.expect_padding_zero();
  r.expect_done();
}

TEST(WireBitset, PackedRoundTripCountAndRanges) {
  tensor::Rng rng(78);
  for (const std::size_t bits : {0UL, 1UL, 7UL, 8UL, 63UL, 64UL, 65UL,
                                 1000UL}) {
    wire::Bitset b(bits);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < bits; ++i) {
      if (rng.bernoulli(0.4)) {
        b.set(i);
        ++expected;
      }
    }
    EXPECT_EQ(b.count(), expected);
    EXPECT_EQ(wire::Bitset::from_packed(b.packed_bytes(), bits), b);
    EXPECT_EQ(wire::Bitset::from_bytemask(b.to_bytemask()), b);
  }
  // Nonzero padding past the declared size is corruption.
  wire::Bitset b(12);
  auto packed = b.packed_bytes();
  packed[1] |= 0xF0;  // bits 12..15
  EXPECT_THROW(wire::Bitset::from_packed(packed, 12), wire::DecodeError);
  // set_range agrees with bit-by-bit sets across word boundaries.
  wire::Bitset ranged(200);
  ranged.set_range(3, 170);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(ranged.test(i), i >= 3 && i < 170);
  }
}

TEST(WireCodec, RowMaskedRoundTripHostileValuesAndEdgePatterns) {
  const auto store = ragged_store();
  const std::size_t J = store.droppable_rows();
  const auto values = hostile_values(store.size(), 81);
  std::vector<std::uint8_t> all_kept(J, 1);
  std::vector<std::uint8_t> all_dropped(J, 0);
  std::vector<std::uint8_t> ragged(J, 0);
  for (std::size_t j = 0; j < J; j += 2) ragged[j] = 1;
  for (const auto& row_kept : {all_kept, all_dropped, ragged}) {
    const auto payload = wire::encode_row_masked(store, row_kept, values);
    const auto decoded = wire::decode_update(store, payload);
    // Measured == the analytic §IV-B oracle via the shared helper.
    std::uint64_t kept_weights = 0;
    for (std::size_t i = 0; i < store.size(); ++i) {
      if (decoded.present.test(i)) ++kept_weights;
    }
    EXPECT_EQ(payload.size(),
              wire::row_masked_bytes(kept_weights, J));
    for (std::size_t i = 0; i < store.size(); ++i) {
      if (decoded.present.test(i)) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(decoded.values[i]),
                  std::bit_cast<std::uint32_t>(values[i]));
      } else {
        ASSERT_EQ(decoded.values[i], 0.0F);
      }
    }
  }
}

TEST(WireCodec, DenseAndSparseRoundTripsIncludingEmpty) {
  const auto store = ragged_store();
  const std::size_t n = store.size();
  const auto values = hostile_values(n, 83);
  {
    const auto payload = wire::encode_dense_f32(values);
    EXPECT_EQ(payload.size(), wire::dense_f32_bytes(n));
    const auto decoded = wire::decode_update(store, payload);
    expect_bit_identical(decoded.values, values);
    EXPECT_EQ(decoded.present.count(), n);
  }
  const std::vector<std::vector<std::uint32_t>> index_sets{
      {},  // empty update
      {0},
      {static_cast<std::uint32_t>(n - 1)},
      {0, 1, 5, 17, static_cast<std::uint32_t>(n - 1)},
  };
  for (const auto& indices : index_sets) {
    std::vector<float> sparse_vals;
    for (const auto idx : indices) sparse_vals.push_back(values[idx]);
    for (const bool fixed : {true, false}) {
      const auto payload =
          fixed ? wire::encode_sparse_fixed(indices, sparse_vals, 64)
                : wire::encode_sparse_varint(indices, sparse_vals);
      EXPECT_EQ(payload.size(),
                fixed ? wire::sparse_fixed_bytes(indices.size(), 64)
                      : wire::sparse_varint_bytes(
                            std::span<const std::uint32_t>(indices)));
      const auto decoded = wire::decode_update(store, payload);
      EXPECT_EQ(decoded.present.count(), indices.size());
      for (std::size_t k = 0; k < indices.size(); ++k) {
        ASSERT_TRUE(decoded.present.test(indices[k]));
        ASSERT_EQ(std::bit_cast<std::uint32_t>(decoded.values[indices[k]]),
                  std::bit_cast<std::uint32_t>(sparse_vals[k]));
      }
    }
  }
}

TEST(WireCodec, TruncatedAndCorruptedPayloadsAreRejected) {
  const auto store = ragged_store();
  const std::size_t J = store.droppable_rows();
  const auto values = hostile_values(store.size(), 85);
  std::vector<std::uint8_t> kept(J, 1);
  kept[2] = 0;
  const auto base = wire::encode_row_masked(store, kept, values);

  // Truncation and extension at the payload level.
  for (const std::size_t cut : {std::size_t{1}, base.bytes.size() / 2}) {
    wire::Payload truncated = base;
    truncated.bytes.resize(base.bytes.size() - cut);
    EXPECT_THROW(wire::decode_update(store, truncated), wire::DecodeError);
  }
  wire::Payload extended = base;
  extended.bytes.push_back(0);
  EXPECT_THROW(wire::decode_update(store, extended), wire::DecodeError);

  // Nonzero padding bits in the packed row pattern.
  wire::Payload padded = base;
  const std::size_t pattern_bytes = (J + 7) / 8;
  if (J % 8 != 0) {
    padded.bytes[pattern_bytes - 1] |= std::uint8_t{1} << (J % 8);
    EXPECT_THROW(wire::decode_update(store, padded), wire::DecodeError);
  }

  // A corrupted pattern byte changes the kept count, so the value section
  // length no longer matches and decode must reject rather than misread.
  wire::Payload flipped = base;
  flipped.bytes[0] ^= 0x01;
  EXPECT_THROW(wire::decode_update(store, flipped), wire::DecodeError);

  // Sparse: out-of-range and unsorted indices.
  {
    const std::vector<std::uint32_t> bad_idx{
        static_cast<std::uint32_t>(store.size())};
    const std::vector<float> v{1.0F};
    auto payload = wire::encode_sparse_fixed(bad_idx, v, 64);
    EXPECT_THROW(wire::decode_update(store, payload), wire::DecodeError);
  }
  {
    std::vector<std::uint32_t> idx{3, 1};
    std::vector<float> v{1.0F, 2.0F};
    wire::Writer w;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      w.u64(idx[i]);
      w.f32(v[i]);
    }
    wire::Payload unsorted{.kind = wire::PayloadKind::kSparseFixed,
                           .aux = 64,
                           .bytes = std::move(w).take()};
    EXPECT_THROW(wire::decode_update(store, unsorted), wire::DecodeError);
  }
  // Sparse-varint whose declared count exceeds the model.
  {
    wire::Writer w;
    w.varint(store.size() + 1);
    wire::Payload bogus{.kind = wire::PayloadKind::kSparseVarint,
                        .aux = 0,
                        .bytes = std::move(w).take()};
    EXPECT_THROW(wire::decode_update(store, bogus), wire::DecodeError);
  }
  // Ternary whose body is not a whole number of 65-bit entries.
  {
    wire::Payload bogus{.kind = wire::PayloadKind::kTernary,
                        .aux = 64,
                        .bytes = std::vector<std::uint8_t>(7, 0)};
    EXPECT_THROW(wire::decode_update(store, bogus), wire::DecodeError);
  }
  // Sub-model with an out-of-range (or NaN) ratio.
  {
    nn::MlpModel model({.input = 6, .hidden = 4, .classes = 3});
    const auto plan = baselines::WidthPlan::for_mlp(model);
    for (const double ratio : {0.0, 1.5, std::nan("")}) {
      wire::Writer w;
      w.f64(ratio);
      wire::Payload bogus{.kind = wire::PayloadKind::kSubModel,
                          .aux = 0,
                          .bytes = std::move(w).take()};
      EXPECT_THROW((void)plan.decode_submodel(model.store(), bogus),
                   wire::DecodeError);
    }
  }
}

TEST(WireOracle, StrategyUplinkIsMeasuredAndMatchesAnalytic) {
  // Acceptance sweep: FedAvg (dense), FedBIAD (row-masked), top-k-family
  // DGC (sparse fixed-64) and STC (ternary) — in every case uplink_bytes is
  // the size of the actually-decoded buffer and equals the analytic oracle.
  auto cfg = data::ImageSynthConfig::mnist_like(91);
  cfg.train_samples = 64;
  cfg.test_samples = 8;
  const auto ds = data::make_image_datasets(cfg);
  nn::MlpModel model({.input = 784, .hidden = 12, .classes = 10});
  const auto& store = model.store();
  std::vector<std::size_t> shard(ds.train->size());
  for (std::size_t i = 0; i < shard.size(); ++i) shard[i] = i;
  fl::TrainSettings settings;
  settings.local_iterations = 4;
  settings.batch_size = 8;
  settings.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};
  auto context = [&](std::size_t client) {
    tensor::Rng init(11);
    model.init_params(init);
    return fl::ClientContext{.client_id = client,
                             .round = 1,
                             .model = model,
                             .global_params = {},
                             .dataset = *ds.train,
                             .shard = shard,
                             .settings = settings,
                             .rng = tensor::Rng(13)};
  };
  std::vector<float> global(store.size());
  {
    auto ctx = context(0);
    tensor::copy(store.params(), global);
    ctx.global_params = global;
    baselines::FedAvgStrategy fedavg;
    const auto out = run_decoded(fedavg, ctx);
    EXPECT_EQ(out.uplink_bytes, out.payload.size());
    EXPECT_EQ(out.uplink_bytes, core::dense_model_bytes(store));
  }
  {
    auto ctx = context(1);
    tensor::copy(store.params(), global);
    ctx.global_params = global;
    core::FedBiadStrategy fedbiad({.dropout_rate = 0.5,
                                   .tau = 3,
                                   .stage_boundary = 5,
                                   .sample_posterior = false});
    const auto out = run_decoded(fedbiad, ctx);
    EXPECT_EQ(out.uplink_bytes, out.payload.size());
    EXPECT_EQ(out.uplink_bytes,
              wire::row_masked_bytes(out.present.count(),
                                     store.droppable_rows()));
  }
  for (const bool use_stc : {false, true}) {
    auto ctx = context(2);
    tensor::copy(store.params(), global);
    ctx.global_params = global;
    compress::CompressorPtr comp;
    if (use_stc) {
      comp = std::make_shared<compress::StcCompressor>(
          compress::StcConfig{.sparsity = 0.01});
    } else {
      // DGC with zero momentum is plain top-k with residual accumulation.
      comp = std::make_shared<compress::DgcCompressor>(
          compress::DgcConfig{.sparsity = 0.01, .momentum = 0.0});
    }
    compress::SketchedStrategy sketched(comp);
    const auto out = run_decoded(sketched, ctx);
    const std::size_t k = out.present.count();
    EXPECT_EQ(out.uplink_bytes, out.payload.size());
    EXPECT_EQ(out.uplink_bytes, use_stc ? wire::ternary_bytes(k, 64)
                                        : wire::sparse_fixed_bytes(k, 64));
  }
}

TEST(SgdProperty, MaskedRowsStayZeroUnderWeightDecay) {
  // Weight decay must not resurrect dropped rows: decay of zero is zero.
  nn::ParameterStore store;
  store.add_group("w", nn::GroupKind::kDense, 4, 3, true);
  store.finalize();
  for (auto& v : store.params()) v = 1.0F;
  for (auto& g : store.grads()) g = 0.5F;
  core::DropPattern pattern(4);
  pattern.set(1, false);
  pattern.apply_to_params(store);
  pattern.apply_to_grads(store);
  nn::sgd_step(store, {.lr = 0.1F, .weight_decay = 0.3F, .clip_norm = 0.0F});
  for (const float v : store.row_params(0, 1)) {
    EXPECT_EQ(v, 0.0F);
  }
  for (const float v : store.row_params(0, 0)) {
    EXPECT_NE(v, 1.0F);  // kept rows trained
  }
}

}  // namespace
}  // namespace fedbiad
