// End-to-end integration tests: full federated simulations exercising the
// paper's main claims at miniature scale.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/fedavg.hpp"
#include "baselines/feddrop.hpp"
#include "baselines/fjord.hpp"
#include "compress/compressed_strategy.hpp"
#include "compress/dgc.hpp"
#include "core/fedbiad_strategy.hpp"
#include "data/image_synth.hpp"
#include "data/partition.hpp"
#include "data/text_synth.hpp"
#include "fl/simulation.hpp"
#include "netsim/tta.hpp"
#include "nn/lstm_lm_model.hpp"
#include "nn/mlp_model.hpp"

namespace fedbiad {
namespace {

struct ImageWorld {
  data::ImageDatasets datasets;
  data::Partition partition;
  nn::ModelFactory factory;
  std::uint64_t dense_bytes = 0;

  explicit ImageWorld(std::uint64_t seed = 11) {
    auto cfg = data::ImageSynthConfig::mnist_like(seed);
    cfg.train_samples = 600;
    cfg.test_samples = 200;
    datasets = data::make_image_datasets(cfg);
    tensor::Rng prng(seed + 1);
    partition = data::partition_iid(datasets.train->size(), 10, prng);
    factory = [] {
      return std::make_unique<nn::MlpModel>(
          nn::MlpConfig{.input = 784, .hidden = 32, .classes = 10});
    };
    nn::MlpModel probe({.input = 784, .hidden = 32, .classes = 10});
    dense_bytes = core::dense_model_bytes(probe.store());
  }

  fl::SimulationConfig sim_config(std::size_t rounds) const {
    fl::SimulationConfig cfg;
    cfg.rounds = rounds;
    cfg.selection_fraction = 0.3;
    cfg.train.local_iterations = 10;
    cfg.train.batch_size = 16;
    cfg.train.topk = 1;
    cfg.train.sgd = {.lr = 0.2F, .weight_decay = 1e-4F, .clip_norm = 5.0F};
    cfg.seed = 13;
    cfg.threads = 4;
    return cfg;
  }

  fl::SimulationResult run(fl::StrategyPtr strategy,
                           std::size_t rounds = 12) const {
    fl::Simulation sim(sim_config(rounds), factory, datasets.train,
                       datasets.test, partition, std::move(strategy));
    return sim.run();
  }
};

TEST(Integration, FedAvgLearnsImages) {
  ImageWorld world;
  const auto result =
      world.run(std::make_shared<baselines::FedAvgStrategy>(), 15);
  EXPECT_GT(result.final_accuracy(false), 0.5);
  EXPECT_LT(result.rounds.back().test_loss, result.rounds.front().test_loss);
}

TEST(Integration, FedBiadMatchesAccuracyWithHalfUpload) {
  ImageWorld world;
  const auto fedavg =
      world.run(std::make_shared<baselines::FedAvgStrategy>(), 30);
  const auto fedbiad = world.run(
      std::make_shared<core::FedBiadStrategy>(
          core::FedBiadConfig{.dropout_rate = 0.5,
                              .tau = 3,
                              .stage_boundary = 25,
                              .sample_posterior = false}),
      30);
  // ~2× upload saving (paper Table I).
  const auto avg_summary = netsim::summarize_upload(fedavg, world.dense_bytes);
  const auto biad_summary =
      netsim::summarize_upload(fedbiad, world.dense_bytes);
  EXPECT_NEAR(avg_summary.save_ratio, 1.0, 0.01);
  EXPECT_GT(biad_summary.save_ratio, 1.8);
  // Accuracy in the same ballpark as the dense baseline.
  EXPECT_GT(fedbiad.best_accuracy(false),
            fedavg.best_accuracy(false) - 0.12);
}

TEST(Integration, FedBiadBeatsRandomDropoutOnImages) {
  ImageWorld world;
  const auto feddrop =
      world.run(std::make_shared<baselines::FedDropStrategy>(0.5), 14);
  const auto fedbiad = world.run(
      std::make_shared<core::FedBiadStrategy>(
          core::FedBiadConfig{.dropout_rate = 0.5,
                              .tau = 3,
                              .stage_boundary = 11,
                              .sample_posterior = false}),
      14);
  // The adaptive pattern should not lose to random dropout (paper's claim);
  // allow a small tolerance at this miniature scale.
  EXPECT_GE(fedbiad.best_accuracy(false), feddrop.best_accuracy(false) - 0.05);
}

TEST(Integration, NonIidShardsStillConverge) {
  ImageWorld world;
  tensor::Rng prng(17);
  auto noniid =
      data::partition_shards(*world.datasets.train, 10, 2, prng);
  fl::Simulation sim(world.sim_config(14), world.factory,
                     world.datasets.train, world.datasets.test,
                     std::move(noniid),
                     std::make_shared<core::FedBiadStrategy>(
                         core::FedBiadConfig{.dropout_rate = 0.3,
                                             .tau = 3,
                                             .stage_boundary = 12,
                                             .sample_posterior = false}));
  const auto result = sim.run();
  EXPECT_GT(result.final_accuracy(false), 0.3);
}

TEST(Integration, FedBiadHandlesRecurrentModels) {
  auto cfg = data::TextSynthConfig::ptb_like(19);
  cfg.vocab = 100;
  cfg.train_sequences = 1000;
  cfg.test_sequences = 150;
  cfg.seq_len = 8;
  cfg.structure_prob = 0.5;
  auto text = data::make_text_datasets_iid(cfg, 20);
  auto factory = [] {
    return std::make_unique<nn::LstmLmModel>(nn::LstmLmConfig{
        .vocab = 100, .embed = 32, .hidden = 48, .layers = 2});
  };
  fl::SimulationConfig sim_cfg;
  sim_cfg.rounds = 12;
  sim_cfg.selection_fraction = 0.5;
  sim_cfg.train.local_iterations = 16;
  sim_cfg.train.batch_size = 8;
  sim_cfg.train.topk = 3;
  sim_cfg.train.sgd = {.lr = 1.0F, .weight_decay = 0.0F, .clip_norm = 5.0F};
  sim_cfg.seed = 23;
  sim_cfg.threads = 8;
  auto strategy = std::make_shared<core::FedBiadStrategy>(
      core::FedBiadConfig{.dropout_rate = 0.5,
                          .tau = 3,
                          .stage_boundary = 10,
                          .sample_posterior = false});
  fl::Simulation sim(sim_cfg, factory, text.train, text.test,
                     text.client_indices, strategy);
  const auto result = sim.run();
  // Top-3 accuracy must climb from the ~3% uniform baseline toward the
  // Zipf-head regime, and the upload saving must hold on the recurrent
  // model — the paper's headline capability.
  EXPECT_GT(result.final_accuracy(true), 0.15);
  nn::LstmLmModel probe(
      {.vocab = 100, .embed = 32, .hidden = 48, .layers = 2});
  const auto summary = netsim::summarize_upload(
      result, core::dense_model_bytes(probe.store()));
  EXPECT_GT(summary.save_ratio, 1.8);
}

TEST(Integration, ComposedFedBiadDgcRunsAndCompressesHard) {
  ImageWorld world;
  auto inner = std::make_shared<core::FedBiadStrategy>(
      core::FedBiadConfig{.dropout_rate = 0.5,
                          .tau = 3,
                          .stage_boundary = 9,
                          .sample_posterior = false});
  auto composed = std::make_shared<compress::ComposedStrategy>(
      inner, std::make_shared<compress::DgcCompressor>(
                 compress::DgcConfig{.sparsity = 0.01}));
  const auto result = world.run(composed, 15);
  EXPECT_EQ(result.strategy, "FedBIAD+DGC");
  const auto summary = netsim::summarize_upload(result, world.dense_bytes);
  EXPECT_GT(summary.save_ratio, 20.0);
  EXPECT_GT(result.final_accuracy(false), 0.2);
}

TEST(Integration, MaskedAverageUnderperformsNormalized) {
  // The DESIGN.md deviation note: literal eq. 10 shrinks rows each round.
  ImageWorld world;
  const auto normalized = world.run(std::make_shared<core::FedBiadStrategy>(
      core::FedBiadConfig{.dropout_rate = 0.5,
                          .tau = 3,
                          .stage_boundary = 9,
                          .sample_posterior = false,
                          .aggregation =
                              fl::AggregationRule::kPerCoordinateNormalized}));
  const auto masked = world.run(std::make_shared<core::FedBiadStrategy>(
      core::FedBiadConfig{.dropout_rate = 0.5,
                          .tau = 3,
                          .stage_boundary = 9,
                          .sample_posterior = false,
                          .aggregation = fl::AggregationRule::kMaskedAverage}));
  EXPECT_GE(normalized.final_accuracy(false), masked.final_accuracy(false));
}

TEST(Integration, FjordRunsEndToEnd) {
  ImageWorld world;
  nn::MlpModel probe({.input = 784, .hidden = 32, .classes = 10});
  auto plan = baselines::WidthPlan::for_mlp(probe);
  const auto result =
      world.run(std::make_shared<baselines::FjordStrategy>(plan, 0.5), 15);
  EXPECT_GT(result.final_accuracy(false), 0.25);
  const auto summary = netsim::summarize_upload(result, world.dense_bytes);
  EXPECT_GT(summary.save_ratio, 1.3);
}

}  // namespace
}  // namespace fedbiad
