// Golden tests for the vectorized elementwise-math layer (tensor/vmath.hpp):
//  - vector kernels vs the scalar ref:: kernels at tight ulp bounds across
//    tile-edge-hostile lengths (in portable builds both sides are the same
//    scalar path, which keeps the equivalence contract under test there too);
//  - absolute/relative accuracy of the polynomial approximations against
//    double-precision libm over the full clamp range;
//  - the documented saturation behaviour on denormal / overflow / ±inf
//    inputs (see the accuracy contract in vmath.hpp);
//  - fused composites (lstm_cell, softmax_xent_row, sgd_axpy) against
//    compositions of the primitive refs.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/vmath.hpp"

namespace fedbiad {
namespace {

namespace vm = tensor::vmath;

// Lengths that straddle every vector-lane boundary: sub-lane, exact
// multiples of 4/8/16, and one-past multiples.
const std::vector<std::size_t> kLengths = {1,  2,  3,  4,  5,  7,  8,
                                           9,  15, 16, 17, 31, 32, 33,
                                           63, 64, 65, 100, 257};

std::int32_t ulp_distance(float a, float b) {
  if (a == b) return 0;
  const auto ia = std::bit_cast<std::int32_t>(a);
  const auto ib = std::bit_cast<std::int32_t>(b);
  // Map the sign-magnitude float ordering onto a monotone integer line.
  const auto key = [](std::int32_t i) {
    return i < 0 ? std::numeric_limits<std::int32_t>::min() + (-i) : i;
  };
  const std::int64_t d =
      static_cast<std::int64_t>(key(ia)) - static_cast<std::int64_t>(key(ib));
  const std::int64_t mag = d < 0 ? -d : d;
  return mag > std::numeric_limits<std::int32_t>::max()
             ? std::numeric_limits<std::int32_t>::max()
             : static_cast<std::int32_t>(mag);
}

std::vector<float> ramp(std::size_t n, float lo, float hi) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = lo + (hi - lo) * static_cast<float>(i) /
                    static_cast<float>(n > 1 ? n - 1 : 1);
  }
  return v;
}

using Unary = void (*)(std::size_t, const float*, float*);

void expect_vector_matches_ref(Unary vec, Unary ref, float lo, float hi,
                               std::int32_t max_ulp, const char* what) {
  for (const std::size_t n : kLengths) {
    const auto x = ramp(n, lo, hi);
    std::vector<float> got(n), want(n);
    vec(n, x.data(), got.data());
    ref(n, x.data(), want.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(ulp_distance(got[i], want[i]), max_ulp)
          << what << " n=" << n << " x=" << x[i] << " got=" << got[i]
          << " want=" << want[i];
    }
  }
}

// The vector and scalar paths run the same polynomial in the same order;
// the only drift allowed is FMA contraction, ≤ 2 ulp through the tanh
// division.
TEST(VmathEquivalence, VectorMatchesRefWithinUlps) {
  expect_vector_matches_ref(vm::vexp, vm::ref::vexp, -90.0F, 90.0F, 2,
                            "vexp");
  expect_vector_matches_ref(vm::vtanh, vm::ref::vtanh, -12.0F, 12.0F, 2,
                            "vtanh");
  expect_vector_matches_ref(vm::vsigmoid, vm::ref::vsigmoid, -40.0F, 40.0F,
                            2, "vsigmoid");
  expect_vector_matches_ref(vm::relu, vm::ref::relu, -5.0F, 5.0F, 0, "relu");
}

TEST(VmathAccuracy, ExpWithinRelTolOfLibm) {
  // Dense sweep across the whole clamp range; ~2 ulp contract → 3e-7.
  for (double x = -87.0; x <= 88.0; x += 0.00737) {
    const auto xf = static_cast<float>(x);
    float y = 0.0F;
    vm::vexp(1, &xf, &y);
    const double want = std::exp(static_cast<double>(xf));
    EXPECT_NEAR(y, want, 3e-7 * want) << "x=" << xf;
  }
}

TEST(VmathAccuracy, TanhAndSigmoidWithinTolOfLibm) {
  for (double x = -30.0; x <= 30.0; x += 0.00311) {
    const auto xf = static_cast<float>(x);
    float t = 0.0F, s = 0.0F;
    vm::vtanh(1, &xf, &t);
    vm::vsigmoid(1, &xf, &s);
    const double want_t = std::tanh(static_cast<double>(xf));
    const double want_s = 1.0 / (1.0 + std::exp(-static_cast<double>(xf)));
    EXPECT_NEAR(t, want_t, 1e-6 + 5e-7 * std::abs(want_t)) << "x=" << xf;
    EXPECT_NEAR(s, want_s, 1e-6 + 5e-7 * want_s) << "x=" << xf;
  }
}

TEST(VmathAccuracy, TanhPreservesRelativeAccuracyNearZero) {
  // The odd-polynomial branch must not lose the leading x term.
  for (float x : {1e-8F, 1e-6F, 1e-4F, 0.01F, 0.1F, 0.5F, 0.624F}) {
    float t = 0.0F;
    vm::vtanh(1, &x, &t);
    const double want = std::tanh(static_cast<double>(x));
    EXPECT_NEAR(t, want, 1e-6 * std::abs(want) + 1e-30) << "x=" << x;
  }
}

TEST(VmathContract, SaturationAndSpecialInputs) {
  const float inf = std::numeric_limits<float>::infinity();
  const float denorm = 1e-42F;
  const float cases[] = {-1e30F, 1e30F, -inf, inf, denorm, -denorm,
                         0.0F,   -0.0F, 200.0F, -200.0F};
  for (const float x : cases) {
    float e = -1.0F, t = -2.0F, s = -3.0F;
    vm::vexp(1, &x, &e);
    vm::vtanh(1, &x, &t);
    vm::vsigmoid(1, &x, &s);
    // exp saturates into (0, ~2.2e38]: finite, positive, normal.
    EXPECT_TRUE(std::isfinite(e)) << "x=" << x;
    EXPECT_GE(e, 1.17e-38F) << "x=" << x;
    EXPECT_LE(e, 2.3e38F) << "x=" << x;
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GE(t, -1.0F);
    EXPECT_LE(t, 1.0F);
    EXPECT_GE(s, 0.0F);
    EXPECT_LE(s, 1.0F);
  }
  float big = 200.0F, nbig = -200.0F, e = 0.0F;
  vm::vtanh(1, &big, &e);
  EXPECT_FLOAT_EQ(e, 1.0F);
  vm::vtanh(1, &nbig, &e);
  EXPECT_FLOAT_EQ(e, -1.0F);
  vm::vsigmoid(1, &big, &e);
  EXPECT_FLOAT_EQ(e, 1.0F);
  float zero = 0.0F;
  vm::vexp(1, &zero, &e);
  EXPECT_FLOAT_EQ(e, 1.0F);
}

TEST(VmathContract, ExpIsMonotoneAcrossReductionBoundaries) {
  // Range-reduction seams (multiples of ln2/2) must not break monotonicity.
  const auto xs = ramp(20001, -20.0F, 20.0F);
  std::vector<float> ys(xs.size());
  vm::vexp(xs.size(), xs.data(), ys.data());
  for (std::size_t i = 1; i < ys.size(); ++i) {
    EXPECT_LE(ys[i - 1], ys[i]) << "x=" << xs[i];
  }
}

TEST(VmathFused, AxpyAndSgdMatchRef) {
  tensor::Rng rng(71);
  for (const std::size_t n : kLengths) {
    std::vector<float> x(n), y(n), y2(n), p(n), p2(n), g(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<float>(rng.uniform(-2, 2));
      y[i] = y2[i] = static_cast<float>(rng.uniform(-2, 2));
      p[i] = p2[i] = static_cast<float>(rng.uniform(-2, 2));
      g[i] = static_cast<float>(rng.uniform(-2, 2));
    }
    vm::axpy(n, 0.37F, x.data(), y.data());
    vm::ref::axpy(n, 0.37F, x.data(), y2.data());
    vm::sgd_axpy(n, p.data(), g.data(), 0.1F, 0.9F, 0.01F);
    vm::ref::sgd_axpy(n, p2.data(), g.data(), 0.1F, 0.9F, 0.01F);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(ulp_distance(y[i], y2[i]), 1) << "axpy n=" << n;
      EXPECT_LE(ulp_distance(p[i], p2[i]), 1) << "sgd n=" << n;
    }
  }
}

TEST(VmathFused, LstmCellMatchesComposedRef) {
  tensor::Rng rng(73);
  for (const std::size_t h : kLengths) {
    std::vector<float> g4(4 * h), g4r, c_prev(h), c(h), tc(h), ho(h), cr(h),
        tcr(h), hor(h);
    for (auto& v : g4) v = static_cast<float>(rng.uniform(-6, 6));
    for (auto& v : c_prev) v = static_cast<float>(rng.uniform(-2, 2));
    g4r = g4;
    vm::lstm_cell(h, g4.data(), c_prev.data(), c.data(), tc.data(),
                  ho.data());
    vm::ref::lstm_cell(h, g4r.data(), c_prev.data(), cr.data(), tcr.data(),
                       hor.data());
    for (std::size_t j = 0; j < 4 * h; ++j) {
      EXPECT_LE(ulp_distance(g4[j], g4r[j]), 4) << "gates h=" << h;
    }
    for (std::size_t j = 0; j < h; ++j) {
      EXPECT_LE(ulp_distance(c[j], cr[j]), 8) << "c h=" << h;
      EXPECT_LE(ulp_distance(tc[j], tcr[j]), 8) << "tanh_c h=" << h;
      EXPECT_LE(ulp_distance(ho[j], hor[j]), 8) << "h h=" << h;
    }
    // And the no-previous-cell form.
    vm::lstm_cell(h, g4.data(), nullptr, c.data(), tc.data(), ho.data());
  }
}

TEST(VmathFused, SoftmaxXentRowMatchesDoubleReference) {
  tensor::Rng rng(79);
  for (const std::size_t n : kLengths) {
    std::vector<float> z(n), g(n);
    for (auto& v : z) v = static_cast<float>(rng.uniform(-8, 8));
    const float lse = vm::softmax_xent_row(n, z.data(), g.data(), 0.5F);

    double mx = z[0];
    for (const float v : z) mx = std::max(mx, static_cast<double>(v));
    double denom = 0.0;
    for (const float v : z) denom += std::exp(static_cast<double>(v) - mx);
    const double want_lse = mx + std::log(denom);
    EXPECT_NEAR(lse, want_lse, 1e-5 * std::max(1.0, std::abs(want_lse)))
        << "n=" << n;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double want =
          0.5 * std::exp(static_cast<double>(z[i]) - mx) / denom;
      EXPECT_NEAR(g[i], want, 1e-6 + 1e-5 * want) << "n=" << n;
      sum += g[i];
    }
    EXPECT_NEAR(sum, 0.5, 1e-5) << "n=" << n;

    // Reduction-only variant agrees with the writing kernel.
    EXPECT_NEAR(vm::logsumexp(n, z.data()), lse,
                1e-6 * std::max(1.0F, std::abs(lse)));
  }
}

TEST(VmathFused, SoftmaxXentRowHandlesExtremeSpread) {
  // A row whose max dominates: no overflow, one-hot output.
  std::vector<float> z = {-500.0F, 0.0F, 700.0F, -1e30F, 3.0F};
  std::vector<float> g(z.size());
  const float lse = vm::softmax_xent_row(z.size(), z.data(), g.data(), 1.0F);
  EXPECT_FLOAT_EQ(lse, 700.0F);
  EXPECT_FLOAT_EQ(g[2], 1.0F);
  EXPECT_NEAR(g[0], 0.0F, 1e-12F);
  EXPECT_NEAR(g[3], 0.0F, 1e-12F);
  // All-equal row: uniform output.
  std::vector<float> flat(7, 2.5F), gf(7);
  vm::softmax_xent_row(flat.size(), flat.data(), gf.data(), 1.0F);
  for (const float v : gf) EXPECT_NEAR(v, 1.0F / 7.0F, 1e-6F);
}

TEST(VmathFused, SoftmaxXentRowInPlace) {
  std::vector<float> z = ramp(33, -3.0F, 3.0F);
  std::vector<float> expect(z.size());
  vm::softmax_xent_row(z.size(), z.data(), expect.data(), 1.0F);
  vm::softmax_xent_row(z.size(), z.data(), z.data(), 1.0F);  // alias
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_FLOAT_EQ(z[i], expect[i]);
  }
}

TEST(VmathFused, ReluBackwardMasksNonPositive) {
  const std::vector<float> pre = {-1.0F, 0.0F, 2.0F, -0.0F, 1e-20F};
  std::vector<float> g = {1.0F, 2.0F, 3.0F, 4.0F, 5.0F};
  std::vector<float> g2 = g;
  vm::relu_backward(pre.size(), pre.data(), g.data());
  vm::ref::relu_backward(pre.size(), pre.data(), g2.data());
  const std::vector<float> want = {0.0F, 0.0F, 3.0F, 0.0F, 5.0F};
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_FLOAT_EQ(g[i], want[i]) << i;
    EXPECT_FLOAT_EQ(g2[i], want[i]) << i;
  }
}

}  // namespace
}  // namespace fedbiad
