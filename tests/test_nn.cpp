// Unit tests for the NN substrate: parameter store, layer forward/backward
// correctness (finite-difference gradient checks), loss, optimizer, models.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "data/batch.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_model.hpp"
#include "nn/dense.hpp"
#include "nn/embedding.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/lstm_lm_model.hpp"
#include "nn/mlp_model.hpp"
#include "nn/optimizer.hpp"
#include "nn/rnn.hpp"
#include "tensor/ops.hpp"

namespace fedbiad::nn {
namespace {

using tensor::Matrix;
using tensor::Rng;

TEST(ParameterStore, GroupRegistrationAndOffsets) {
  ParameterStore store;
  const auto g0 = store.add_group("a", GroupKind::kDense, 4, 5, true);
  const auto g1 = store.add_group("b", GroupKind::kEmbedding, 3, 2, false);
  const auto g2 = store.add_group("c", GroupKind::kRecurrentHidden, 2, 2, true);
  store.finalize();
  EXPECT_EQ(store.size(), 4u * 5 + 3u * 2 + 2u * 2);
  EXPECT_EQ(store.group(g0).offset, 0u);
  EXPECT_EQ(store.group(g1).offset, 20u);
  EXPECT_EQ(store.group(g2).offset, 26u);
  EXPECT_EQ(store.droppable_rows(), 4u + 2u);  // groups a and c
}

TEST(ParameterStore, DroppableRowRoundTrip) {
  ParameterStore store;
  store.add_group("a", GroupKind::kDense, 4, 5, true);
  store.add_group("b", GroupKind::kEmbedding, 3, 2, false);
  store.add_group("c", GroupKind::kRecurrentInput, 2, 2, true);
  store.finalize();
  for (std::size_t j = 0; j < store.droppable_rows(); ++j) {
    const auto ref = store.droppable_row(j);
    EXPECT_EQ(store.droppable_index(ref.group, ref.row), j);
  }
  EXPECT_THROW((void)store.droppable_row(6), fedbiad::CheckError);
  EXPECT_THROW((void)store.droppable_index(1, 0), fedbiad::CheckError);
}

TEST(ParameterStore, RowSpansAreDisjointAndOrdered) {
  ParameterStore store;
  store.add_group("a", GroupKind::kDense, 3, 4, true);
  store.finalize();
  auto r0 = store.row_params(0, 0);
  auto r2 = store.row_params(0, 2);
  EXPECT_EQ(r0.size(), 4u);
  EXPECT_EQ(r2.data() - r0.data(), 8);
}

TEST(ParameterStore, FinalizeGuards) {
  ParameterStore store;
  EXPECT_THROW(store.finalize(), fedbiad::CheckError);  // empty
  store.add_group("a", GroupKind::kDense, 1, 1, true);
  store.finalize();
  EXPECT_THROW(store.add_group("b", GroupKind::kDense, 1, 1, true),
               fedbiad::CheckError);
  EXPECT_THROW(store.finalize(), fedbiad::CheckError);  // twice
}

TEST(ParameterStore, ZeroGradsClears) {
  ParameterStore store;
  store.add_group("a", GroupKind::kDense, 2, 2, true);
  store.finalize();
  store.grads()[1] = 3.0F;
  store.zero_grads();
  for (float g : store.grads()) EXPECT_FLOAT_EQ(g, 0.0F);
}

// ---- finite-difference gradient checking ----------------------------------

// Scalar loss L = <R, output> for a fixed random R gives deterministic
// gradients g_out = R to feed backward.
void expect_grad_close(double analytic, double numeric, double atol,
                       double rtol, const std::string& what) {
  EXPECT_NEAR(analytic, numeric,
              atol + rtol * std::max(std::abs(analytic), std::abs(numeric)))
      << what;
}

TEST(Dense, GradientCheck) {
  ParameterStore store;
  Dense layer(store, "fc", 5, 4);
  store.finalize();
  Rng rng(7);
  layer.init(store, rng);
  // Give biases nonzero values so their gradient path is exercised.
  for (std::size_t o = 0; o < 4; ++o) {
    store.row_params(0, o)[5] = static_cast<float>(rng.uniform(-0.5, 0.5));
  }

  Matrix x(3, 5);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Matrix r(3, 4);
  r.fill_uniform(rng, -1.0F, 1.0F);

  auto loss = [&] {
    Matrix out;
    layer.forward(store, x, out);
    return tensor::dot(r.flat(), out.flat());
  };

  store.zero_grads();
  Matrix out, g_in;
  layer.forward(store, x, out);
  layer.backward(store, x, r, &g_in);

  const float eps = 1e-2F;
  auto params = store.params();
  auto grads = store.grads();
  for (std::size_t i = 0; i < params.size(); i += 3) {
    const float saved = params[i];
    params[i] = saved + eps;
    const double up = loss();
    params[i] = saved - eps;
    const double down = loss();
    params[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    expect_grad_close(grads[i], numeric, 1e-3, 2e-2,
                      "param " + std::to_string(i));
  }
  // Input gradient check.
  for (std::size_t i = 0; i < x.size(); i += 2) {
    const float saved = x.flat()[i];
    x.flat()[i] = saved + eps;
    const double up = loss();
    x.flat()[i] = saved - eps;
    const double down = loss();
    x.flat()[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    expect_grad_close(g_in.flat()[i], numeric, 1e-3, 2e-2,
                      "input " + std::to_string(i));
  }
}

TEST(Embedding, ForwardLooksUpRows) {
  ParameterStore store;
  Embedding emb(store, "e", 5, 3);
  store.finalize();
  auto table = store.group_params(emb.group());
  std::iota(table.begin(), table.end(), 0.0F);
  std::vector<std::int32_t> tokens{2, 0, 4};
  Matrix out;
  emb.forward(store, tokens, out);
  EXPECT_FLOAT_EQ(out(0, 0), 6.0F);
  EXPECT_FLOAT_EQ(out(0, 2), 8.0F);
  EXPECT_FLOAT_EQ(out(1, 0), 0.0F);
  EXPECT_FLOAT_EQ(out(2, 1), 13.0F);
}

TEST(Embedding, BackwardScatterAddsRepeatedTokens) {
  ParameterStore store;
  Embedding emb(store, "e", 4, 2);
  store.finalize();
  std::vector<std::int32_t> tokens{1, 1, 3};
  Matrix g(3, 2);
  g(0, 0) = 1.0F;
  g(1, 0) = 2.0F;
  g(2, 1) = 5.0F;
  emb.backward(store, tokens, g);
  auto grads = store.group_grads(emb.group());
  EXPECT_FLOAT_EQ(grads[1 * 2 + 0], 3.0F);  // token 1 accumulated twice
  EXPECT_FLOAT_EQ(grads[3 * 2 + 1], 5.0F);
  EXPECT_FLOAT_EQ(grads[0], 0.0F);
}

TEST(Lstm, ForwardShapesAndDeterminism) {
  ParameterStore store;
  LstmLayer lstm(store, "l", 3, 4);
  store.finalize();
  Rng rng(9);
  lstm.init(store, rng);
  Matrix x(2 * 5, 3);
  x.fill_uniform(rng, -1.0F, 1.0F);
  LstmLayer::Cache c1, c2;
  lstm.forward(store, x, 5, 2, c1);
  lstm.forward(store, x, 5, 2, c2);
  ASSERT_EQ(c1.h.rows(), 10u);
  ASSERT_EQ(c1.h.cols(), 4u);
  for (std::size_t i = 0; i < c1.h.size(); ++i) {
    EXPECT_FLOAT_EQ(c1.h.flat()[i], c2.h.flat()[i]);
  }
}

TEST(Lstm, HiddenStateStaysBounded) {
  // tanh output gate bounds |h| ≤ 1 regardless of weights.
  ParameterStore store;
  LstmLayer lstm(store, "l", 2, 3);
  store.finalize();
  Rng rng(11);
  for (auto& v : store.params()) v = static_cast<float>(rng.uniform(-3, 3));
  Matrix x(4 * 8, 2);
  x.fill_uniform(rng, -5.0F, 5.0F);
  LstmLayer::Cache cache;
  lstm.forward(store, x, 4, 8, cache);
  for (float h : cache.h.flat()) {
    EXPECT_LE(std::abs(h), 1.0F);
  }
}

TEST(Lstm, GradientCheck) {
  ParameterStore store;
  LstmLayer lstm(store, "l", 3, 4);
  store.finalize();
  Rng rng(13);
  lstm.init(store, rng);

  const std::size_t batch = 2, seq = 3;
  Matrix x(batch * seq, 3);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Matrix r(batch * seq, 4);
  r.fill_uniform(rng, -1.0F, 1.0F);

  auto loss = [&] {
    LstmLayer::Cache cache;
    lstm.forward(store, x, batch, seq, cache);
    return tensor::dot(r.flat(), cache.h.flat());
  };

  store.zero_grads();
  LstmLayer::Cache cache;
  lstm.forward(store, x, batch, seq, cache);
  Matrix g_x;
  lstm.backward(store, x, cache, r, g_x);

  const float eps = 1e-2F;
  auto params = store.params();
  auto grads = store.grads();
  for (std::size_t i = 0; i < params.size(); i += 5) {
    const float saved = params[i];
    params[i] = saved + eps;
    const double up = loss();
    params[i] = saved - eps;
    const double down = loss();
    params[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    expect_grad_close(grads[i], numeric, 5e-3, 5e-2,
                      "param " + std::to_string(i));
  }
  for (std::size_t i = 0; i < x.size(); i += 3) {
    const float saved = x.flat()[i];
    x.flat()[i] = saved + eps;
    const double up = loss();
    x.flat()[i] = saved - eps;
    const double down = loss();
    x.flat()[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    expect_grad_close(g_x.flat()[i], numeric, 5e-3, 5e-2,
                      "input " + std::to_string(i));
  }
}

TEST(Conv2D, GradientCheck) {
  ParameterStore store;
  Conv2D conv(store, "c", 2, 3, 3, 6, 6);
  store.finalize();
  Rng rng(17);
  conv.init(store, rng);

  Matrix x(2, 2 * 6 * 6);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Matrix r(2, conv.out_size());
  r.fill_uniform(rng, -1.0F, 1.0F);

  auto loss = [&] {
    Matrix out;
    conv.forward(store, x, out);
    return tensor::dot(r.flat(), out.flat());
  };

  store.zero_grads();
  Matrix out, g_in;
  conv.forward(store, x, out);
  conv.backward(store, x, r, &g_in);

  const float eps = 1e-2F;
  auto params = store.params();
  auto grads = store.grads();
  for (std::size_t i = 0; i < params.size(); i += 7) {
    const float saved = params[i];
    params[i] = saved + eps;
    const double up = loss();
    params[i] = saved - eps;
    const double down = loss();
    params[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    expect_grad_close(grads[i], numeric, 3e-3, 3e-2,
                      "param " + std::to_string(i));
  }
  for (std::size_t i = 0; i < x.size(); i += 11) {
    const float saved = x.flat()[i];
    x.flat()[i] = saved + eps;
    const double up = loss();
    x.flat()[i] = saved - eps;
    const double down = loss();
    x.flat()[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    expect_grad_close(g_in.flat()[i], numeric, 3e-3, 3e-2,
                      "input " + std::to_string(i));
  }
}

TEST(Conv2D, GradientCheckStridedPadded) {
  ParameterStore store;
  Conv2D conv(store, "c", 2, 3, 3, 7, 8, /*stride=*/2, /*padding=*/1);
  store.finalize();
  Rng rng(19);
  conv.init(store, rng);

  Matrix x(2, 2 * 7 * 8);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Matrix r(2, conv.out_size());
  r.fill_uniform(rng, -1.0F, 1.0F);

  auto loss = [&] {
    Matrix out;
    conv.forward(store, x, out);
    return tensor::dot(r.flat(), out.flat());
  };

  store.zero_grads();
  Matrix out, g_in;
  conv.forward(store, x, out);
  conv.backward(store, x, r, &g_in);

  const float eps = 1e-2F;
  auto params = store.params();
  auto grads = store.grads();
  for (std::size_t i = 0; i < params.size(); i += 5) {
    const float saved = params[i];
    params[i] = saved + eps;
    const double up = loss();
    params[i] = saved - eps;
    const double down = loss();
    params[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    expect_grad_close(grads[i], numeric, 3e-3, 3e-2,
                      "param " + std::to_string(i));
  }
  for (std::size_t i = 0; i < x.size(); i += 7) {
    const float saved = x.flat()[i];
    x.flat()[i] = saved + eps;
    const double up = loss();
    x.flat()[i] = saved - eps;
    const double down = loss();
    x.flat()[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    expect_grad_close(g_in.flat()[i], numeric, 3e-3, 3e-2,
                      "input " + std::to_string(i));
  }
}

TEST(Loss, CrossEntropyMatchesManualComputation) {
  Matrix logits(1, 3);
  logits(0, 0) = 1.0F;
  logits(0, 1) = 2.0F;
  logits(0, 2) = 3.0F;
  std::vector<std::int32_t> labels{2};
  Matrix g;
  const float loss = softmax_cross_entropy(logits, labels, g);
  const double denom = std::exp(1.0) + std::exp(2.0) + std::exp(3.0);
  EXPECT_NEAR(loss, -std::log(std::exp(3.0) / denom), 1e-5);
  // Gradient = softmax - onehot.
  EXPECT_NEAR(g(0, 0), std::exp(1.0) / denom, 1e-5);
  EXPECT_NEAR(g(0, 2), std::exp(3.0) / denom - 1.0, 1e-5);
}

TEST(Loss, IgnoresNegativeLabels) {
  Matrix logits(2, 3);
  logits.fill(1.0F);
  std::vector<std::int32_t> labels{-1, 0};
  Matrix g;
  const float loss = softmax_cross_entropy(logits, labels, g);
  EXPECT_NEAR(loss, std::log(3.0), 1e-5);  // only the second row counts
  for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(g(0, c), 0.0F);
}

TEST(Loss, GradientCheckAgainstFiniteDifference) {
  Rng rng(19);
  Matrix logits(4, 6);
  logits.fill_uniform(rng, -2.0F, 2.0F);
  std::vector<std::int32_t> labels{0, 3, 5, 2};
  Matrix g;
  softmax_cross_entropy(logits, labels, g);
  const float eps = 1e-3F;
  for (std::size_t i = 0; i < logits.size(); i += 5) {
    Matrix up = logits, down = logits;
    up.flat()[i] += eps;
    down.flat()[i] -= eps;
    Matrix scratch;
    const double numeric =
        (softmax_cross_entropy(up, labels, scratch) -
         softmax_cross_entropy(down, labels, scratch)) /
        (2.0 * eps);
    expect_grad_close(g.flat()[i], numeric, 1e-3, 2e-2,
                      "logit " + std::to_string(i));
  }
}

TEST(Loss, EvaluateLogitsCountsTopK) {
  Matrix logits(2, 4);
  // Sample 0: label 1 ranks 2nd; sample 1: label 3 ranks 1st.
  logits(0, 0) = 3.0F;
  logits(0, 1) = 2.0F;
  logits(0, 2) = 1.0F;
  logits(0, 3) = 0.0F;
  logits(1, 3) = 5.0F;
  std::vector<std::int32_t> labels{1, 3};
  const auto top1 = evaluate_logits(logits, labels, 1);
  EXPECT_EQ(top1.count, 2u);
  EXPECT_EQ(top1.top1, 1u);
  const auto top2 = evaluate_logits(logits, labels, 2);
  EXPECT_EQ(top2.topk, 2u);
}

TEST(Loss, EvalResultMerge) {
  EvalResult a{.loss_sum = 1.0, .top1 = 2, .topk = 3, .count = 4};
  EvalResult b{.loss_sum = 2.0, .top1 = 1, .topk = 1, .count = 4};
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.loss_sum, 3.0);
  EXPECT_EQ(a.top1, 3u);
  EXPECT_DOUBLE_EQ(a.mean_loss(), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(a.top1_accuracy(), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(a.topk_accuracy(), 4.0 / 8.0);
}

TEST(Optimizer, SgdStepMovesAgainstGradient) {
  ParameterStore store;
  store.add_group("a", GroupKind::kDense, 1, 3, true);
  store.finalize();
  store.params()[0] = 1.0F;
  store.grads()[0] = 2.0F;
  SgdConfig cfg{.lr = 0.5F, .weight_decay = 0.0F, .clip_norm = 0.0F};
  sgd_step(store, cfg);
  EXPECT_FLOAT_EQ(store.params()[0], 0.0F);
}

TEST(Optimizer, WeightDecayShrinksParams) {
  ParameterStore store;
  store.add_group("a", GroupKind::kDense, 1, 2, true);
  store.finalize();
  store.params()[0] = 1.0F;
  SgdConfig cfg{.lr = 0.1F, .weight_decay = 0.5F, .clip_norm = 0.0F};
  sgd_step(store, cfg);
  EXPECT_FLOAT_EQ(store.params()[0], 1.0F - 0.1F * 0.5F);
}

TEST(Optimizer, ClipNormLimitsStep) {
  ParameterStore store;
  store.add_group("a", GroupKind::kDense, 1, 2, true);
  store.finalize();
  store.grads()[0] = 3.0F;
  store.grads()[1] = 4.0F;  // norm = 5
  SgdConfig cfg{.lr = 1.0F, .weight_decay = 0.0F, .clip_norm = 1.0F};
  const double norm = sgd_step(store, cfg);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(store.params()[0], -3.0F / 5.0F, 1e-6);
  EXPECT_NEAR(store.params()[1], -4.0F / 5.0F, 1e-6);
}

data::Batch toy_image_batch(Rng& rng, std::size_t n, std::size_t dim,
                            std::size_t classes) {
  data::Batch b;
  b.batch = n;
  b.x.resize(n, dim);
  b.targets.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::int32_t>(rng.uniform_index(classes));
    b.targets[i] = c;
    for (std::size_t d = 0; d < dim; ++d) {
      b.x(i, d) = static_cast<float>(
          rng.normal(d % classes == static_cast<std::size_t>(c) ? 1.0 : 0.0,
                     0.3));
    }
  }
  return b;
}

TEST(MlpModel, TrainingReducesLoss) {
  MlpModel model({.input = 16, .hidden = 24, .classes = 4});
  Rng rng(21);
  model.init_params(rng);
  const auto batch = toy_image_batch(rng, 64, 16, 4);
  SgdConfig cfg{.lr = 0.5F, .weight_decay = 0.0F, .clip_norm = 0.0F};
  const float first = model.train_step(batch);
  sgd_step(model.store(), cfg);
  float last = first;
  for (int i = 0; i < 60; ++i) {
    last = model.train_step(batch);
    sgd_step(model.store(), cfg);
  }
  EXPECT_LT(last, first * 0.5F);
}

TEST(MlpModel, EvalBatchIsConsistentWithTraining) {
  MlpModel model({.input = 8, .hidden = 8, .classes = 3});
  Rng rng(23);
  model.init_params(rng);
  const auto batch = toy_image_batch(rng, 32, 8, 3);
  const auto eval = model.eval_batch(batch, 2);
  EXPECT_EQ(eval.count, 32u);
  EXPECT_LE(eval.top1, eval.topk);
  EXPECT_LE(eval.topk, eval.count);
}

data::Batch toy_text_batch(Rng& rng, std::size_t n, std::size_t seq,
                           std::size_t vocab) {
  data::Batch b;
  b.batch = n;
  b.seq = seq;
  b.tokens.resize(n * seq);
  b.targets.resize(n * seq);
  for (std::size_t i = 0; i < n; ++i) {
    auto tok = static_cast<std::int32_t>(rng.uniform_index(vocab));
    for (std::size_t t = 0; t < seq; ++t) {
      b.tokens[i * seq + t] = tok;
      const auto next = static_cast<std::int32_t>((tok + 1) %
                                                  static_cast<int>(vocab));
      b.targets[i * seq + t] = next;
      tok = next;
    }
  }
  return b;
}

TEST(LstmLmModel, LearnsDeterministicSuccessor) {
  LstmLmModel model({.vocab = 12, .embed = 16, .hidden = 24, .layers = 2});
  Rng rng(25);
  model.init_params(rng);
  SgdConfig cfg{.lr = 0.5F, .weight_decay = 0.0F, .clip_norm = 5.0F};
  const auto batch = toy_text_batch(rng, 16, 6, 12);
  const float first = model.train_step(batch);
  sgd_step(model.store(), cfg);
  float last = first;
  for (int i = 0; i < 420; ++i) {
    last = model.train_step(batch);
    sgd_step(model.store(), cfg);
  }
  EXPECT_LT(last, first * 0.4F);
  const auto eval = model.eval_batch(batch, 1);
  EXPECT_GT(eval.top1_accuracy(), 0.8);
}

TEST(LstmLmModel, GroupMetadataExposesRecurrentKinds) {
  LstmLmModel model({.vocab = 10, .embed = 4, .hidden = 6, .layers = 2});
  const auto& store = model.store();
  EXPECT_EQ(store.group(model.embed_group()).kind, GroupKind::kEmbedding);
  EXPECT_EQ(store.group(model.unit_group(0)).kind, GroupKind::kRecurrentUnit);
  EXPECT_EQ(store.group(model.unit_group(1)).kind, GroupKind::kRecurrentUnit);
  EXPECT_EQ(store.group(model.out_group()).kind, GroupKind::kDense);
  EXPECT_TRUE(is_recurrent(store.group(model.unit_group(0)).kind));
  // One row per hidden unit: all 4 gates' input weights, biases, and
  // recurrent weights live in that row.
  EXPECT_EQ(store.group(model.unit_group(0)).rows, 6u);
  EXPECT_EQ(store.group(model.unit_group(0)).row_len, 4u * (4 + 1) + 4u * 6);
  EXPECT_EQ(store.group(model.unit_group(1)).row_len, 4u * (6 + 1) + 4u * 6);
}

TEST(Lstm, DroppedUnitRowIsExactlyInert) {
  // The paper's row = activation-dropout equivalence: zeroing a unit row
  // makes that unit's hidden output identically zero at every timestep.
  ParameterStore store;
  LstmLayer lstm(store, "l", 3, 5);
  store.finalize();
  Rng rng(77);
  lstm.init(store, rng);
  // Zero unit 2's entire row.
  for (auto& v : store.row_params(lstm.group(), 2)) v = 0.0F;
  Matrix x(3 * 7, 3);
  x.fill_uniform(rng, -2.0F, 2.0F);
  LstmLayer::Cache cache;
  lstm.forward(store, x, 3, 7, cache);
  for (std::size_t row = 0; row < cache.h.rows(); ++row) {
    EXPECT_EQ(cache.h(row, 2), 0.0F);
    EXPECT_NE(cache.h(row, 0), 0.0F);
  }
}

TEST(ConvModel, TrainsOnToyImages) {
  ConvModel model({.height = 8,
                   .width = 8,
                   .channels = 1,
                   .filters = 4,
                   .kernel = 3,
                   .classes = 3});
  Rng rng(27);
  model.init_params(rng);
  const auto batch = toy_image_batch(rng, 32, 64, 3);
  SgdConfig cfg{.lr = 0.2F, .weight_decay = 0.0F, .clip_norm = 0.0F};
  const float first = model.train_step(batch);
  sgd_step(model.store(), cfg);
  float last = first;
  for (int i = 0; i < 80; ++i) {
    last = model.train_step(batch);
    sgd_step(model.store(), cfg);
  }
  EXPECT_LT(last, first);
  EXPECT_EQ(model.store().group(model.conv_group()).kind,
            GroupKind::kConvFilter);
}


TEST(Rnn, GradientCheck) {
  ParameterStore store;
  RnnLayer rnn(store, "r", 3, 5);
  store.finalize();
  Rng rng(83);
  rnn.init(store, rng);

  const std::size_t batch = 2, seq = 4;
  Matrix x(batch * seq, 3);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Matrix r(batch * seq, 5);
  r.fill_uniform(rng, -1.0F, 1.0F);

  auto loss = [&] {
    RnnLayer::Cache cache;
    rnn.forward(store, x, batch, seq, cache);
    return tensor::dot(r.flat(), cache.h.flat());
  };

  store.zero_grads();
  RnnLayer::Cache cache;
  rnn.forward(store, x, batch, seq, cache);
  Matrix g_x;
  rnn.backward(store, x, cache, r, g_x);

  const float eps = 1e-2F;
  auto params = store.params();
  auto grads = store.grads();
  for (std::size_t i = 0; i < params.size(); i += 3) {
    const float saved = params[i];
    params[i] = saved + eps;
    const double up = loss();
    params[i] = saved - eps;
    const double down = loss();
    params[i] = saved;
    expect_grad_close(grads[i], (up - down) / (2.0 * eps), 5e-3, 5e-2,
                      "param " + std::to_string(i));
  }
  for (std::size_t i = 0; i < x.size(); i += 2) {
    const float saved = x.flat()[i];
    x.flat()[i] = saved + eps;
    const double up = loss();
    x.flat()[i] = saved - eps;
    const double down = loss();
    x.flat()[i] = saved;
    expect_grad_close(g_x.flat()[i], (up - down) / (2.0 * eps), 5e-3, 5e-2,
                      "input " + std::to_string(i));
  }
}

TEST(Rnn, DroppedUnitRowIsExactlyInert) {
  ParameterStore store;
  RnnLayer rnn(store, "r", 2, 4);
  store.finalize();
  Rng rng(89);
  rnn.init(store, rng);
  for (auto& v : store.row_params(rnn.group(), 1)) v = 0.0F;
  Matrix x(3 * 6, 2);
  x.fill_uniform(rng, -2.0F, 2.0F);
  RnnLayer::Cache cache;
  rnn.forward(store, x, 3, 6, cache);
  for (std::size_t row = 0; row < cache.h.rows(); ++row) {
    EXPECT_EQ(cache.h(row, 1), 0.0F);
    EXPECT_NE(cache.h(row, 0), 0.0F);
  }
}

TEST(Rnn, HiddenStatesBoundedByTanh) {
  ParameterStore store;
  RnnLayer rnn(store, "r", 2, 3);
  store.finalize();
  Rng rng(97);
  for (auto& v : store.params()) v = static_cast<float>(rng.uniform(-4, 4));
  Matrix x(2 * 10, 2);
  x.fill_uniform(rng, -5.0F, 5.0F);
  RnnLayer::Cache cache;
  rnn.forward(store, x, 2, 10, cache);
  for (const float h : cache.h.flat()) {
    EXPECT_LE(std::abs(h), 1.0F);
  }
}

TEST(Rnn, RegistersUnitGranularRecurrentGroup) {
  ParameterStore store;
  RnnLayer rnn(store, "r", 7, 5);
  store.finalize();
  const auto& grp = store.group(rnn.group());
  EXPECT_EQ(grp.kind, GroupKind::kRecurrentUnit);
  EXPECT_TRUE(is_recurrent(grp.kind));
  EXPECT_EQ(grp.rows, 5u);
  EXPECT_EQ(grp.row_len, 7u + 1 + 5u);
}

TEST(Models, InitIsDeterministicGivenSeed) {
  MlpModel a({.input = 8, .hidden = 8, .classes = 3});
  MlpModel b({.input = 8, .hidden = 8, .classes = 3});
  Rng ra(31), rb(31);
  a.init_params(ra);
  b.init_params(rb);
  auto pa = a.store().params();
  auto pb = b.store().params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_FLOAT_EQ(pa[i], pb[i]);
  }
}

}  // namespace
}  // namespace fedbiad::nn
