// Tests for the event-driven engine: the virtual-clock scheduler, per-client
// heterogeneity profiles, determinism across seeds/thread counts/engines,
// barrier-mode bit-equivalence with the legacy sync Simulation, and the
// staleness-aware aggregation modes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/afd.hpp"
#include "baselines/fedavg.hpp"
#include "common/check.hpp"
#include "core/fedbiad_strategy.hpp"
#include "data/image_synth.hpp"
#include "data/partition.hpp"
#include "fl/async_simulation.hpp"
#include "fl/scheduler.hpp"
#include "fl/simulation.hpp"
#include "netsim/client_profile.hpp"
#include "nn/mlp_model.hpp"

namespace fedbiad::fl {
namespace {

// --- EventScheduler -------------------------------------------------------

TEST(EventScheduler, RunsInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule_at(3.0, [&] { order.push_back(3); });
  sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(2.0, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
  EXPECT_TRUE(sched.empty());
}

TEST(EventScheduler, BreaksTimeTiesByInsertionOrder) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sched.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventScheduler, CallbacksMayScheduleFurtherEvents) {
  EventScheduler sched;
  std::vector<double> times;
  sched.schedule_after(1.0, [&] {
    times.push_back(sched.now());
    sched.schedule_after(0.5, [&] { times.push_back(sched.now()); });
  });
  sched.schedule_at(1.2, [&] { times.push_back(sched.now()); });
  sched.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.2);  // pre-scheduled event beats the nested 1.5
  EXPECT_DOUBLE_EQ(times[2], 1.5);
}

TEST(EventScheduler, RejectsSchedulingInThePast) {
  EventScheduler sched;
  sched.schedule_at(2.0, [] {});
  EXPECT_TRUE(sched.run_next());
  EXPECT_THROW(sched.schedule_at(1.0, [] {}), fedbiad::CheckError);
  EXPECT_THROW(sched.schedule_after(-0.1, [] {}), fedbiad::CheckError);
}

TEST(EventScheduler, RunNextReportsEmptiness) {
  EventScheduler sched;
  EXPECT_FALSE(sched.run_next());
  sched.schedule_after(0.0, [] {});
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_TRUE(sched.run_next());
  EXPECT_FALSE(sched.run_next());
}

// --- ClientProfile --------------------------------------------------------

TEST(ClientProfile, HomogeneousDefaultsMatchBaseLink) {
  const netsim::LinkModel base;
  const netsim::HeterogeneityConfig cfg;  // all spreads at 1
  EXPECT_TRUE(cfg.homogeneous());
  const auto profiles =
      netsim::make_profiles(5, cfg, base, tensor::Rng(123));
  for (const auto& p : profiles) {
    EXPECT_EQ(p.link.up_mbps, base.up_mbps);
    EXPECT_EQ(p.link.down_mbps, base.down_mbps);
    EXPECT_EQ(p.compute_multiplier, 1.0);
    // Timing formulas are then bit-identical to the shared LinkModel.
    EXPECT_EQ(p.upload_seconds(12345), base.upload_seconds(12345));
    EXPECT_EQ(p.download_seconds(999), base.download_seconds(999));
  }
}

TEST(ClientProfile, DeterministicForSameStream) {
  netsim::HeterogeneityConfig cfg;
  cfg.compute_spread = 8.0;
  cfg.bandwidth_spread = 4.0;
  cfg.straggler_fraction = 0.25;
  const netsim::LinkModel base;
  const auto a = netsim::make_profiles(40, cfg, base, tensor::Rng(7));
  const auto b = netsim::make_profiles(40, cfg, base, tensor::Rng(7));
  const auto c = netsim::make_profiles(40, cfg, base, tensor::Rng(8));
  ASSERT_EQ(a.size(), b.size());
  bool any_diff_to_c = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].compute_multiplier, b[i].compute_multiplier);
    EXPECT_EQ(a[i].link.up_mbps, b[i].link.up_mbps);
    any_diff_to_c |= a[i].compute_multiplier != c[i].compute_multiplier;
  }
  EXPECT_TRUE(any_diff_to_c) << "different seeds should differ";
}

TEST(ClientProfile, DrawsStayWithinConfiguredSpreads) {
  netsim::HeterogeneityConfig cfg;
  cfg.compute_spread = 8.0;
  cfg.bandwidth_spread = 4.0;
  cfg.straggler_fraction = 0.5;
  cfg.straggler_multiplier = 3.0;
  const netsim::LinkModel base;
  const auto profiles =
      netsim::make_profiles(200, cfg, base, tensor::Rng(11));
  bool saw_straggler = false;
  for (const auto& p : profiles) {
    EXPECT_GE(p.compute_multiplier, 1.0);
    EXPECT_LE(p.compute_multiplier,
              cfg.compute_spread * cfg.straggler_multiplier);
    saw_straggler |= p.compute_multiplier > cfg.compute_spread;
    EXPECT_LE(p.link.up_mbps, base.up_mbps);
    EXPECT_GE(p.link.up_mbps, base.up_mbps / cfg.bandwidth_spread - 1e-12);
    EXPECT_GT(p.compute_seconds(100.0), 0.0);
  }
  EXPECT_TRUE(saw_straggler);
}

TEST(ClientProfile, RejectsInvalidConfig) {
  netsim::HeterogeneityConfig cfg;
  cfg.compute_spread = 0.5;
  EXPECT_THROW(netsim::make_profiles(1, cfg, {}, tensor::Rng(1)),
               fedbiad::CheckError);
  cfg = {};
  cfg.straggler_fraction = 1.5;
  EXPECT_THROW(netsim::make_profiles(1, cfg, {}, tensor::Rng(1)),
               fedbiad::CheckError);
}

// --- Engine determinism ---------------------------------------------------

struct EngineScenario {
  SimulationConfig sim;
  data::DatasetPtr train;
  data::DatasetPtr test;
  data::Partition partition;
  nn::ModelFactory factory;
};

EngineScenario make_engine_scenario(std::size_t threads) {
  EngineScenario sc;
  sc.sim.rounds = 4;
  sc.sim.selection_fraction = 0.5;  // 3 of 6 clients in flight
  sc.sim.train.local_iterations = 3;
  sc.sim.train.batch_size = 8;
  sc.sim.train.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};
  sc.sim.seed = 9;
  sc.sim.threads = threads;
  auto img_cfg = data::ImageSynthConfig::mnist_like(3);
  img_cfg.train_samples = 96;
  img_cfg.test_samples = 30;
  img_cfg.height = 10;
  img_cfg.width = 10;
  const auto datasets = data::make_image_datasets(img_cfg);
  sc.train = datasets.train;
  sc.test = datasets.test;
  tensor::Rng prng(5);
  sc.partition = data::partition_iid(datasets.train->size(), 6, prng);
  sc.factory = [] {
    return std::make_unique<nn::MlpModel>(
        nn::MlpConfig{.input = 100, .hidden = 8, .classes = 10});
  };
  return sc;
}

netsim::HeterogeneityConfig stressed_fleet() {
  netsim::HeterogeneityConfig h;
  h.compute_spread = 6.0;
  h.bandwidth_spread = 3.0;
  h.straggler_fraction = 0.3;
  h.straggler_multiplier = 4.0;
  return h;
}

SimulationResult run_async(AggregationMode mode, std::size_t threads,
                           const netsim::HeterogeneityConfig& fleet,
                           bool fedbiad = false) {
  EngineScenario sc = make_engine_scenario(threads);
  AsyncSimulationConfig cfg;
  cfg.base = sc.sim;
  cfg.mode = mode;
  cfg.buffer_size = 2;
  cfg.heterogeneity = fleet;
  StrategyPtr strategy;
  if (fedbiad) {
    strategy = std::make_shared<core::FedBiadStrategy>(
        core::FedBiadConfig{.dropout_rate = 0.5, .tau = 2,
                            .stage_boundary = 3});
  } else {
    strategy = std::make_shared<baselines::FedAvgStrategy>();
  }
  AsyncSimulation sim(cfg, sc.factory, sc.train, sc.test, sc.partition,
                      strategy);
  return sim.run();
}

void expect_identical_trajectories(const SimulationResult& a,
                                   const SimulationResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].participants, b.rounds[i].participants);
    EXPECT_EQ(a.rounds[i].uplink_bytes_total, b.rounds[i].uplink_bytes_total);
    EXPECT_EQ(a.rounds[i].uplink_bytes_max, b.rounds[i].uplink_bytes_max);
    EXPECT_EQ(a.rounds[i].downlink_bytes, b.rounds[i].downlink_bytes);
    EXPECT_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss) << "round " << i;
    EXPECT_EQ(a.rounds[i].test_loss, b.rounds[i].test_loss) << "round " << i;
    EXPECT_EQ(a.rounds[i].top1, b.rounds[i].top1) << "round " << i;
    EXPECT_EQ(a.rounds[i].topk, b.rounds[i].topk) << "round " << i;
    EXPECT_EQ(a.rounds[i].clock_seconds, b.rounds[i].clock_seconds);
    EXPECT_EQ(a.rounds[i].mean_staleness, b.rounds[i].mean_staleness);
    EXPECT_EQ(a.rounds[i].upload_seconds, b.rounds[i].upload_seconds);
    EXPECT_EQ(a.rounds[i].download_seconds, b.rounds[i].download_seconds);
  }
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << "param " << i;
  }
}

class EngineDeterminism
    : public ::testing::TestWithParam<AggregationMode> {};

// Two runs with the same seed are identical — at 1 worker thread and at 4.
TEST_P(EngineDeterminism, RepeatedRunsIdentical) {
  for (const std::size_t threads : {1u, 4u}) {
    const auto a = run_async(GetParam(), threads, stressed_fleet());
    const auto b = run_async(GetParam(), threads, stressed_fleet());
    expect_identical_trajectories(a, b);
  }
}

// The worker-thread count never leaks into the trajectory: all server-side
// decisions happen in virtual-time event order on the engine thread.
TEST_P(EngineDeterminism, ThreadCountInvariant) {
  const auto t1 = run_async(GetParam(), 1, stressed_fleet());
  const auto t4 = run_async(GetParam(), 4, stressed_fleet());
  expect_identical_trajectories(t1, t4);
}

TEST_P(EngineDeterminism, ThreadCountInvariantForFedBiad) {
  const auto t1 = run_async(GetParam(), 1, stressed_fleet(), true);
  const auto t4 = run_async(GetParam(), 4, stressed_fleet(), true);
  expect_identical_trajectories(t1, t4);
}

INSTANTIATE_TEST_SUITE_P(AllModes, EngineDeterminism,
                         ::testing::Values(AggregationMode::kBarrier,
                                           AggregationMode::kFedAsync,
                                           AggregationMode::kBufferedK),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// The legacy sync engine and the event-driven engine in barrier mode over a
// homogeneous fleet produce bit-identical trajectories — at both thread
// counts. (Simulation is an adapter over the barrier engine; this guards
// the equivalence against future divergence of either path.)
TEST(EngineEquivalence, BarrierMatchesSyncBitForBit) {
  for (const std::size_t threads : {1u, 4u}) {
    EngineScenario sc = make_engine_scenario(threads);
    Simulation sync(sc.sim, sc.factory, sc.train, sc.test, sc.partition,
                    std::make_shared<baselines::FedAvgStrategy>());
    const auto s = sync.run();
    const auto a = run_async(AggregationMode::kBarrier, threads, {});
    EXPECT_EQ(s.engine, "sync");
    EXPECT_EQ(a.engine, "barrier");
    expect_identical_trajectories(s, a);
  }
}

// Sync vs barrier for FedBIAD as well: the paper's core strategy keeps
// cross-round client state (weight scores), the hardest case for the
// one-code-path refactor.
TEST(EngineEquivalence, BarrierMatchesSyncForFedBiad) {
  EngineScenario sc = make_engine_scenario(2);
  Simulation sync(sc.sim, sc.factory, sc.train, sc.test, sc.partition,
                  std::make_shared<core::FedBiadStrategy>(
                      core::FedBiadConfig{.dropout_rate = 0.5, .tau = 2,
                                          .stage_boundary = 3}));
  const auto s = sync.run();
  const auto a = run_async(AggregationMode::kBarrier, 2, {}, true);
  expect_identical_trajectories(s, a);
}

// Heterogeneity only bends the virtual timeline, never the learning
// trajectory, under barrier aggregation: the same clients train the same
// data in the same order, they just finish later.
TEST(EngineEquivalence, BarrierTrajectoryUnaffectedByHeterogeneity) {
  const auto homo = run_async(AggregationMode::kBarrier, 2, {});
  const auto hetero =
      run_async(AggregationMode::kBarrier, 2, stressed_fleet());
  ASSERT_EQ(homo.rounds.size(), hetero.rounds.size());
  for (std::size_t i = 0; i < homo.rounds.size(); ++i) {
    EXPECT_EQ(homo.rounds[i].train_loss, hetero.rounds[i].train_loss);
    EXPECT_EQ(homo.rounds[i].top1, hetero.rounds[i].top1);
    EXPECT_EQ(homo.rounds[i].uplink_bytes_total,
              hetero.rounds[i].uplink_bytes_total);
    // Stragglers and slower links stretch the clock.
    EXPECT_GT(hetero.rounds[i].clock_seconds, homo.rounds[i].clock_seconds);
  }
  for (std::size_t i = 0; i < homo.final_params.size(); ++i) {
    ASSERT_EQ(homo.final_params[i], hetero.final_params[i]);
  }
}

// --- Async semantics ------------------------------------------------------

TEST(FedAsyncMode, CommitsPerArrivalWithStaleness) {
  const auto r = run_async(AggregationMode::kFedAsync, 2, stressed_fleet());
  ASSERT_EQ(r.rounds.size(), 4u);
  EXPECT_EQ(r.engine, "fedasync");
  double total_staleness = 0.0;
  double prev_clock = 0.0;
  for (const auto& rec : r.rounds) {
    EXPECT_EQ(rec.participants, 1u);  // one arrival per commit
    EXPECT_GE(rec.mean_staleness, 0.0);
    EXPECT_GE(rec.clock_seconds, prev_clock);
    prev_clock = rec.clock_seconds;
    total_staleness += rec.mean_staleness;
  }
  // With 3 clients in flight and per-arrival commits, later arrivals must
  // have seen older versions at least once.
  EXPECT_GT(total_staleness, 0.0);
}

TEST(BufferedMode, CommitsEveryKArrivals) {
  const auto r = run_async(AggregationMode::kBufferedK, 2, stressed_fleet());
  ASSERT_EQ(r.rounds.size(), 4u);
  EXPECT_EQ(r.engine, "buffered");
  for (const auto& rec : r.rounds) {
    EXPECT_EQ(rec.participants, 2u);  // buffer_size = 2 in run_async
  }
}

// Async modes still learn: accuracy after a few commits beats the 10-class
// random baseline. (Weak on purpose — convergence quality is the golden
// tests' and benches' job; this just guards "the model actually moves".)
TEST(AsyncModes, AsyncAggregationStillLearns) {
  for (const auto mode :
       {AggregationMode::kFedAsync, AggregationMode::kBufferedK}) {
    const auto r = run_async(mode, 2, stressed_fleet());
    EXPECT_GT(r.best_accuracy(false), 0.05) << to_string(mode);
    EXPECT_LT(r.rounds.back().train_loss, 3.0) << to_string(mode);
  }
}

// AFD keeps server-side state (score map written in end_round, pattern
// broadcast in begin_round) that run_client reads from worker threads. The
// engine quiesces in-flight training before the hooks, so even per-arrival
// commits stay race-free and deterministic.
TEST(AsyncModes, ServerStatefulStrategyIsDeterministic) {
  auto run_afd = [](std::size_t threads) {
    EngineScenario sc = make_engine_scenario(threads);
    AsyncSimulationConfig cfg;
    cfg.base = sc.sim;
    cfg.mode = AggregationMode::kFedAsync;
    cfg.heterogeneity = stressed_fleet();
    AsyncSimulation sim(cfg, sc.factory, sc.train, sc.test, sc.partition,
                        std::make_shared<baselines::AfdStrategy>(0.5));
    return sim.run();
  };
  const auto a = run_afd(4);
  const auto b = run_afd(4);
  expect_identical_trajectories(a, b);
  const auto c = run_afd(1);
  expect_identical_trajectories(a, c);
}

TEST(AsyncConfig, RejectsInvalidStalenessAndBuffer) {
  EngineScenario sc = make_engine_scenario(1);
  AsyncSimulationConfig cfg;
  cfg.base = sc.sim;
  cfg.staleness.mixing_rate = 0.0;
  EXPECT_THROW(AsyncSimulation(cfg, sc.factory, sc.train, sc.test,
                               sc.partition,
                               std::make_shared<baselines::FedAvgStrategy>()),
               fedbiad::CheckError);
  cfg.staleness.mixing_rate = 0.6;
  cfg.buffer_size = 0;
  EXPECT_THROW(AsyncSimulation(cfg, sc.factory, sc.train, sc.test,
                               sc.partition,
                               std::make_shared<baselines::FedAvgStrategy>()),
               fedbiad::CheckError);
}

TEST(AsyncConfig, SimTimeToAccuracyUsesVirtualClock) {
  const auto r = run_async(AggregationMode::kBarrier, 2, stressed_fleet());
  const auto tta = r.sim_time_to_accuracy(0.0, false);
  ASSERT_TRUE(tta.has_value());
  EXPECT_EQ(*tta, r.rounds.front().clock_seconds);
}

}  // namespace
}  // namespace fedbiad::fl
