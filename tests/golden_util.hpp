// Golden-trace IO for tests/test_golden.cpp: a minimal JSON writer/reader
// for the fixed per-round trajectory schema checked in under tests/golden/.
// Self-contained (no third-party JSON dependency); numbers are written with
// %.17g so doubles round-trip exactly.
#pragma once

#include <cctype>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fl/metrics.hpp"

namespace fedbiad::testing {

struct GoldenRound {
  std::size_t round = 0;
  double train_loss = 0.0;
  double test_loss = 0.0;
  double top1 = 0.0;
  double topk = 0.0;
  std::uint64_t uplink_total = 0;
  std::uint64_t uplink_max = 0;
  std::uint64_t downlink = 0;
  std::size_t participants = 0;
  // Scenario accounting; absent in pre-scenario golden files (defaults 0,
  // which is also what a hook-free engine reports).
  std::size_t abandoned = 0;
  std::uint64_t wasted_uplink = 0;
};

struct GoldenTrace {
  std::string strategy;
  std::string scenario;
  std::vector<GoldenRound> rounds;
};

inline GoldenTrace to_trace(const fl::SimulationResult& result,
                            const std::string& scenario) {
  GoldenTrace trace;
  trace.strategy = result.strategy;
  trace.scenario = scenario;
  for (const fl::RoundRecord& r : result.rounds) {
    GoldenRound g;
    g.round = r.round;
    g.train_loss = r.train_loss;
    g.test_loss = r.test_loss;
    g.top1 = r.top1;
    g.topk = r.topk;
    g.uplink_total = r.uplink_bytes_total;
    g.uplink_max = r.uplink_bytes_max;
    g.downlink = r.downlink_bytes;
    g.participants = r.participants;
    g.abandoned = r.abandoned;
    g.wasted_uplink = r.wasted_uplink_bytes;
    trace.rounds.push_back(g);
  }
  return trace;
}

inline void write_golden(const std::string& path, const GoldenTrace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write golden file: " + path);
  auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  os << "{\n";
  os << "  \"schema\": 1,\n";
  os << "  \"strategy\": \"" << trace.strategy << "\",\n";
  os << "  \"scenario\": \"" << trace.scenario << "\",\n";
  os << "  \"rounds\": [\n";
  for (std::size_t i = 0; i < trace.rounds.size(); ++i) {
    const GoldenRound& r = trace.rounds[i];
    os << "    {\"round\": " << r.round
       << ", \"train_loss\": " << num(r.train_loss)
       << ", \"test_loss\": " << num(r.test_loss)
       << ", \"top1\": " << num(r.top1) << ", \"topk\": " << num(r.topk)
       << ", \"uplink_total\": " << r.uplink_total
       << ", \"uplink_max\": " << r.uplink_max
       << ", \"downlink\": " << r.downlink
       << ", \"participants\": " << r.participants
       << ", \"abandoned\": " << r.abandoned
       << ", \"wasted_uplink\": " << r.wasted_uplink << "}"
       << (i + 1 < trace.rounds.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

/// Tiny recursive-descent parser for the subset of JSON the golden files
/// use (objects, arrays, strings, numbers). Throws on malformed input.
class GoldenParser {
 public:
  explicit GoldenParser(std::string text) : text_(std::move(text)) {}

  GoldenTrace parse() {
    GoldenTrace trace;
    expect('{');
    bool first = true;
    while (peek() != '}') {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "strategy") {
        trace.strategy = parse_string();
      } else if (key == "scenario") {
        trace.scenario = parse_string();
      } else if (key == "rounds") {
        trace.rounds = parse_rounds();
      } else {
        skip_number();  // "schema" and any future scalar field
      }
    }
    expect('}');
    return trace;
  }

 private:
  char peek() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) throw std::runtime_error("golden: truncated");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("golden: expected '") + c +
                               "' at offset " + std::to_string(pos_));
    }
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') out.push_back(text_[pos_++]);
    expect('"');
    return out;
  }

  double parse_number() {
    peek();  // skip whitespace
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) throw std::runtime_error("golden: expected number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  void skip_number() { (void)parse_number(); }

  std::vector<GoldenRound> parse_rounds() {
    std::vector<GoldenRound> rounds;
    expect('[');
    while (peek() != ']') {
      if (!rounds.empty()) expect(',');
      GoldenRound r;
      expect('{');
      bool first = true;
      while (peek() != '}') {
        if (!first) expect(',');
        first = false;
        const std::string key = parse_string();
        expect(':');
        const double v = parse_number();
        if (key == "round") {
          r.round = static_cast<std::size_t>(v);
        } else if (key == "train_loss") {
          r.train_loss = v;
        } else if (key == "test_loss") {
          r.test_loss = v;
        } else if (key == "top1") {
          r.top1 = v;
        } else if (key == "topk") {
          r.topk = v;
        } else if (key == "uplink_total") {
          r.uplink_total = static_cast<std::uint64_t>(v);
        } else if (key == "uplink_max") {
          r.uplink_max = static_cast<std::uint64_t>(v);
        } else if (key == "downlink") {
          r.downlink = static_cast<std::uint64_t>(v);
        } else if (key == "participants") {
          r.participants = static_cast<std::size_t>(v);
        } else if (key == "abandoned") {
          r.abandoned = static_cast<std::size_t>(v);
        } else if (key == "wasted_uplink") {
          r.wasted_uplink = static_cast<std::uint64_t>(v);
        } else {
          throw std::runtime_error("golden: unknown round key " + key);
        }
      }
      expect('}');
      rounds.push_back(r);
    }
    expect(']');
    return rounds;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

inline GoldenTrace read_golden(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read golden file: " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return GoldenParser(ss.str()).parse();
}

}  // namespace fedbiad::testing
