// Tests for the crash-safe checkpoint subsystem: snapshot file round-trip,
// torn/corrupt-file detection with fallback to the last good snapshot,
// retention pruning, rng state restoration, and the engine resume contract —
// a run resumed from any mid-run snapshot is bit-identical to the
// uninterrupted run, for every aggregation mode, with the stateful FedBIAD
// strategy, under fault injection, and across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fedavg.hpp"
#include "checkpoint/checkpoint.hpp"
#include "common/check.hpp"
#include "core/fedbiad_strategy.hpp"
#include "data/image_synth.hpp"
#include "data/partition.hpp"
#include "fl/async_simulation.hpp"
#include "fl/strategy.hpp"
#include "netsim/client_profile.hpp"
#include "nn/mlp_model.hpp"
#include "scenario/config.hpp"
#include "scenario/model.hpp"
#include "tensor/rng.hpp"
#include "wire/reader.hpp"
#include "wire/update_codec.hpp"

namespace fedbiad {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("fedbiad_ckpt_" + tag + "_" +
                        std::to_string(counter++));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// --- Snapshot file round-trip ---------------------------------------------

checkpoint::EngineSnapshot sample_snapshot() {
  checkpoint::EngineSnapshot snap;
  snap.engine = "barrier";
  snap.seed = 42;
  snap.rounds_target = 8;
  snap.param_count = 5;
  snap.clock = 12.75;
  snap.version = 3;
  snap.dispatched = 11;
  tensor::Rng rng(42);
  for (int i = 0; i < 7; ++i) rng.uniform();
  (void)rng.normal();  // leaves a cached Box–Muller deviate in the state
  snap.rng = rng.state();
  snap.committed = 9;
  snap.abandoned = 1;
  snap.rejected = 1;
  snap.rejected_deliveries = 4;
  snap.wasted_uplink_bytes = 123;
  snap.rejected_bytes = 456;
  snap.global = {1.0F, -2.5F, 0.0F, 3.25F, -0.125F};
  fl::RoundRecord rec;
  rec.round = 3;
  rec.train_loss = 0.5;
  rec.test_loss = 0.25;
  rec.top1 = 0.75;
  rec.topk = 0.875;
  rec.participants = 3;
  rec.uplink_bytes_total = 999;
  rec.uplink_bytes_max = 333;
  rec.downlink_bytes = 444;
  rec.lttr_seconds = 0.01;
  rec.upload_seconds = 1.5;
  rec.download_seconds = 0.5;
  rec.aggregate_seconds = 0.002;
  rec.clock_seconds = 12.75;
  rec.mean_staleness = 0.5;
  rec.abandoned = 1;
  rec.wasted_uplink_bytes = 123;
  rec.rejected = 1;
  rec.rejected_bytes = 456;
  snap.rounds = {rec};
  snap.strategy_state = {1, 2, 3, 250};
  checkpoint::JobSnapshot job;
  job.client = 2;
  job.slot = 1;
  job.version = 3;
  job.dispatch_index = 10;
  job.attempt = 2;
  job.dispatch_clock = 12.0;
  job.download_seconds = 0.25;
  job.compute_seconds = 0.5;
  job.upload_start = 12.75;
  job.churn_fails = false;
  job.churn_fraction = 0.0;
  job.has_pending = true;
  job.samples = 8;
  job.is_update = true;
  job.payload.bytes = {9, 8, 7, 6, 5};
  job.train_seconds = 0.03;
  job.mean_loss = 1.5;
  job.last_loss = 1.25;
  snap.jobs.push_back(job);
  checkpoint::JobSnapshot training;
  training.client = 4;
  training.dispatch_index = 9;
  training.dispatch_clock = 11.5;
  training.has_pending = false;
  training.samples = 8;
  snap.jobs.push_back(training);
  snap.events = {
      {checkpoint::EventKind::kDeadline, 0, 14.0, 0},
      {checkpoint::EventKind::kTraining, 1, 13.0, 0},
      {checkpoint::EventKind::kDelivery, 0, 13.5, 0},
      {checkpoint::EventKind::kDuplicate, checkpoint::kNoJob, 13.25, 777},
  };
  return snap;
}

void expect_snapshot_equal(const checkpoint::EngineSnapshot& a,
                           const checkpoint::EngineSnapshot& b) {
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.rounds_target, b.rounds_target);
  EXPECT_EQ(a.param_count, b.param_count);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.dispatched, b.dispatched);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.rng.s[i], b.rng.s[i]);
  EXPECT_EQ(a.rng.cached_normal, b.rng.cached_normal);
  EXPECT_EQ(a.rng.has_cached_normal, b.rng.has_cached_normal);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.rejected_deliveries, b.rejected_deliveries);
  EXPECT_EQ(a.wasted_uplink_bytes, b.wasted_uplink_bytes);
  EXPECT_EQ(a.rejected_bytes, b.rejected_bytes);
  EXPECT_EQ(a.global, b.global);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].round, b.rounds[i].round);
    EXPECT_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss);
    EXPECT_EQ(a.rounds[i].test_loss, b.rounds[i].test_loss);
    EXPECT_EQ(a.rounds[i].top1, b.rounds[i].top1);
    EXPECT_EQ(a.rounds[i].topk, b.rounds[i].topk);
    EXPECT_EQ(a.rounds[i].participants, b.rounds[i].participants);
    EXPECT_EQ(a.rounds[i].uplink_bytes_total, b.rounds[i].uplink_bytes_total);
    EXPECT_EQ(a.rounds[i].uplink_bytes_max, b.rounds[i].uplink_bytes_max);
    EXPECT_EQ(a.rounds[i].downlink_bytes, b.rounds[i].downlink_bytes);
    EXPECT_EQ(a.rounds[i].lttr_seconds, b.rounds[i].lttr_seconds);
    EXPECT_EQ(a.rounds[i].upload_seconds, b.rounds[i].upload_seconds);
    EXPECT_EQ(a.rounds[i].download_seconds, b.rounds[i].download_seconds);
    EXPECT_EQ(a.rounds[i].aggregate_seconds, b.rounds[i].aggregate_seconds);
    EXPECT_EQ(a.rounds[i].clock_seconds, b.rounds[i].clock_seconds);
    EXPECT_EQ(a.rounds[i].mean_staleness, b.rounds[i].mean_staleness);
    EXPECT_EQ(a.rounds[i].abandoned, b.rounds[i].abandoned);
    EXPECT_EQ(a.rounds[i].wasted_uplink_bytes, b.rounds[i].wasted_uplink_bytes);
    EXPECT_EQ(a.rounds[i].rejected, b.rounds[i].rejected);
    EXPECT_EQ(a.rounds[i].rejected_bytes, b.rounds[i].rejected_bytes);
  }
  EXPECT_EQ(a.strategy_state, b.strategy_state);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].client, b.jobs[i].client);
    EXPECT_EQ(a.jobs[i].slot, b.jobs[i].slot);
    EXPECT_EQ(a.jobs[i].version, b.jobs[i].version);
    EXPECT_EQ(a.jobs[i].dispatch_index, b.jobs[i].dispatch_index);
    EXPECT_EQ(a.jobs[i].attempt, b.jobs[i].attempt);
    EXPECT_EQ(a.jobs[i].dispatch_clock, b.jobs[i].dispatch_clock);
    EXPECT_EQ(a.jobs[i].download_seconds, b.jobs[i].download_seconds);
    EXPECT_EQ(a.jobs[i].compute_seconds, b.jobs[i].compute_seconds);
    EXPECT_EQ(a.jobs[i].upload_start, b.jobs[i].upload_start);
    EXPECT_EQ(a.jobs[i].churn_fails, b.jobs[i].churn_fails);
    EXPECT_EQ(a.jobs[i].churn_fraction, b.jobs[i].churn_fraction);
    EXPECT_EQ(a.jobs[i].has_pending, b.jobs[i].has_pending);
    EXPECT_EQ(a.jobs[i].samples, b.jobs[i].samples);
    EXPECT_EQ(a.jobs[i].is_update, b.jobs[i].is_update);
    EXPECT_EQ(a.jobs[i].payload.bytes, b.jobs[i].payload.bytes);
    EXPECT_EQ(a.jobs[i].train_seconds, b.jobs[i].train_seconds);
    EXPECT_EQ(a.jobs[i].mean_loss, b.jobs[i].mean_loss);
    EXPECT_EQ(a.jobs[i].last_loss, b.jobs[i].last_loss);
  }
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].job_index, b.events[i].job_index);
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].aux, b.events[i].aux);
  }
}

TEST(CheckpointFile, WriteReadRoundTrip) {
  const std::string dir = fresh_dir("roundtrip");
  const checkpoint::EngineSnapshot snap = sample_snapshot();
  checkpoint::write_snapshot(dir, snap);
  const auto paths = checkpoint::list_snapshots(dir);
  ASSERT_EQ(paths.size(), 1u);
  expect_snapshot_equal(checkpoint::read_snapshot(paths[0]), snap);
  // No torn tmp file left behind by the atomic write.
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().rfind(".tmp-", 0),
              std::string::npos);
  }
}

TEST(CheckpointFile, RestoredRngContinuesTheSequence) {
  const std::string dir = fresh_dir("rng");
  tensor::Rng original(7);
  for (int i = 0; i < 5; ++i) original.uniform();
  (void)original.normal();  // half of a Box–Muller pair stays cached
  checkpoint::EngineSnapshot snap = sample_snapshot();
  snap.rng = original.state();
  checkpoint::write_snapshot(dir, snap);
  const auto back = checkpoint::read_snapshot(
      checkpoint::list_snapshots(dir)[0]);
  tensor::Rng restored(999);
  restored.set_state(back.rng);
  // The cached deviate is part of the state: normal() must agree too.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(restored.normal(), original.normal());
    EXPECT_EQ(restored.uniform(), original.uniform());
    EXPECT_EQ(restored.uniform_index(1000), original.uniform_index(1000));
  }
}

TEST(CheckpointFile, ListSnapshotsSortsByVersionAndHandlesMissingDir) {
  const std::string dir = fresh_dir("list");
  checkpoint::EngineSnapshot snap = sample_snapshot();
  for (const std::uint64_t v : {12u, 3u, 101u}) {
    snap.version = v;
    checkpoint::write_snapshot(dir, snap);
  }
  const auto paths = checkpoint::list_snapshots(dir);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_NE(paths[0].find("00000003"), std::string::npos);
  EXPECT_NE(paths[1].find("00000012"), std::string::npos);
  EXPECT_NE(paths[2].find("00000101"), std::string::npos);
  EXPECT_TRUE(checkpoint::list_snapshots(dir + "/nonexistent").empty());
  EXPECT_FALSE(checkpoint::find_latest_valid(dir + "/nonexistent").has_value());
}

TEST(CheckpointFile, TornAndCorruptSnapshotsAreSkipped) {
  const std::string dir = fresh_dir("torn");
  checkpoint::EngineSnapshot snap = sample_snapshot();
  snap.version = 1;
  checkpoint::write_snapshot(dir, snap);
  snap.version = 2;
  checkpoint::write_snapshot(dir, snap);
  auto paths = checkpoint::list_snapshots(dir);
  ASSERT_EQ(paths.size(), 2u);
  // Tear the newest snapshot as a crash mid-write would.
  {
    std::ifstream in(paths[1], std::ios::binary);
    std::vector<char> all((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    all.resize(all.size() / 2);
    std::ofstream out(paths[1], std::ios::binary | std::ios::trunc);
    out.write(all.data(), static_cast<std::streamsize>(all.size()));
  }
  EXPECT_THROW(checkpoint::read_snapshot(paths[1]), wire::DecodeError);
  const auto latest = checkpoint::find_latest_valid(dir);
  ASSERT_TRUE(latest.has_value());
  EXPECT_NE(latest->find("00000001"), std::string::npos)
      << "must fall back to the last good snapshot";
  // Bit-rot the survivor too: now nothing verifies.
  {
    std::fstream f(paths[0],
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char b = 0;
    f.seekg(40);
    f.get(b);
    b = static_cast<char>(b ^ 0x04);
    f.seekp(40);
    f.put(b);
  }
  EXPECT_FALSE(checkpoint::find_latest_valid(dir).has_value());
}

TEST(CheckpointFile, PruneKeepsNewest) {
  const std::string dir = fresh_dir("prune");
  checkpoint::EngineSnapshot snap = sample_snapshot();
  for (std::uint64_t v = 1; v <= 5; ++v) {
    snap.version = v;
    checkpoint::write_snapshot(dir, snap);
  }
  checkpoint::prune(dir, 2);
  const auto paths = checkpoint::list_snapshots(dir);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NE(paths[0].find("00000004"), std::string::npos);
  EXPECT_NE(paths[1].find("00000005"), std::string::npos);
  checkpoint::prune(dir, 10);  // keep more than exist: no-op
  EXPECT_EQ(checkpoint::list_snapshots(dir).size(), 2u);
}

// --- Engine resume: bit-identity ------------------------------------------

constexpr std::size_t kClients = 6;

struct Fixture {
  fl::SimulationConfig sim;
  data::DatasetPtr train;
  data::DatasetPtr test;
  data::Partition partition;
  nn::ModelFactory factory;
};

Fixture make_fixture(std::size_t threads, std::size_t rounds) {
  Fixture fx;
  fx.sim.rounds = rounds;
  fx.sim.selection_fraction = 0.5;
  fx.sim.train.local_iterations = 3;
  fx.sim.train.batch_size = 8;
  fx.sim.train.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};
  fx.sim.seed = 9;
  fx.sim.threads = threads;
  auto img_cfg = data::ImageSynthConfig::mnist_like(3);
  img_cfg.train_samples = 96;
  img_cfg.test_samples = 30;
  img_cfg.height = 10;
  img_cfg.width = 10;
  const auto datasets = data::make_image_datasets(img_cfg);
  fx.train = datasets.train;
  fx.test = datasets.test;
  tensor::Rng prng(5);
  fx.partition = data::partition_iid(datasets.train->size(), kClients, prng);
  fx.factory = [] {
    return std::make_unique<nn::MlpModel>(
        nn::MlpConfig{.input = 100, .hidden = 8, .classes = 10});
  };
  return fx;
}

fl::StrategyPtr make_strategy(bool fedbiad) {
  if (fedbiad) {
    return std::make_shared<core::FedBiadStrategy>(
        core::FedBiadConfig{.dropout_rate = 0.5, .tau = 2});
  }
  return std::make_shared<baselines::FedAvgStrategy>();
}

struct RunSpec {
  fl::AggregationMode mode = fl::AggregationMode::kBarrier;
  std::size_t threads = 1;
  std::size_t rounds = 4;
  bool fedbiad = false;
  bool faults = false;
};

fl::SimulationResult run_with_checkpoints(const RunSpec& spec,
                                          const std::string& dir,
                                          bool resume) {
  Fixture fx = make_fixture(spec.threads, spec.rounds);
  fl::AsyncSimulationConfig cfg;
  cfg.base = fx.sim;
  cfg.mode = spec.mode;
  cfg.buffer_size = 2;
  netsim::HeterogeneityConfig fleet;
  fleet.compute_spread = 6.0;
  fleet.bandwidth_spread = 3.0;
  fleet.straggler_fraction = 0.3;
  fleet.straggler_multiplier = 4.0;
  cfg.heterogeneity = fleet;
  if (spec.faults) {
    scenario::Config sc;
    sc.name = "ckpt_faults";
    sc.seed = 55;
    sc.deadline_seconds = 2.5;
    sc.churn = scenario::ChurnConfig{.failure_rate = 0.1};
    sc.faults = scenario::FaultsConfig{
        .corruption_probability = 0.2,
        .corruption_mode = scenario::CorruptionMode::kBitFlip,
        .duplicate_probability = 0.1,
        .retry = {.max_attempts = 2,
                  .backoff_seconds = 0.125,
                  .backoff_multiplier = 2.0,
                  .jitter_fraction = 0.5},
    };
    cfg.hooks = scenario::make_engine_hooks(sc, kClients);
    cfg.scenario_name = sc.name;
  }
  if (!dir.empty()) {
    cfg.checkpoint.directory = dir;
    cfg.checkpoint.every_rounds = 1;
    cfg.checkpoint.keep = spec.rounds + 1;  // keep all for the tests
    cfg.checkpoint.resume = resume;
  }
  fl::AsyncSimulation sim(cfg, fx.factory, fx.train, fx.test, fx.partition,
                          make_strategy(spec.fedbiad));
  return sim.run();
}

// Bitwise comparison of everything deterministic. Wall-clock fields
// (lttr/aggregate seconds) are real measured time and legitimately differ
// between a resumed and an uninterrupted run; all virtual-clock and model
// state must agree exactly.
void expect_resumed_identical(const fl::SimulationResult& a,
                              const fl::SimulationResult& b) {
  EXPECT_EQ(a.strategy, b.strategy);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].round, b.rounds[i].round);
    EXPECT_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss) << "round " << i;
    EXPECT_EQ(a.rounds[i].test_loss, b.rounds[i].test_loss) << "round " << i;
    EXPECT_EQ(a.rounds[i].top1, b.rounds[i].top1) << "round " << i;
    EXPECT_EQ(a.rounds[i].topk, b.rounds[i].topk) << "round " << i;
    EXPECT_EQ(a.rounds[i].participants, b.rounds[i].participants);
    EXPECT_EQ(a.rounds[i].uplink_bytes_total, b.rounds[i].uplink_bytes_total);
    EXPECT_EQ(a.rounds[i].uplink_bytes_max, b.rounds[i].uplink_bytes_max);
    EXPECT_EQ(a.rounds[i].downlink_bytes, b.rounds[i].downlink_bytes);
    EXPECT_EQ(a.rounds[i].upload_seconds, b.rounds[i].upload_seconds);
    EXPECT_EQ(a.rounds[i].download_seconds, b.rounds[i].download_seconds);
    EXPECT_EQ(a.rounds[i].clock_seconds, b.rounds[i].clock_seconds);
    EXPECT_EQ(a.rounds[i].mean_staleness, b.rounds[i].mean_staleness);
    EXPECT_EQ(a.rounds[i].abandoned, b.rounds[i].abandoned);
    EXPECT_EQ(a.rounds[i].wasted_uplink_bytes, b.rounds[i].wasted_uplink_bytes);
    EXPECT_EQ(a.rounds[i].rejected, b.rounds[i].rejected);
    EXPECT_EQ(a.rounds[i].rejected_bytes, b.rounds[i].rejected_bytes);
  }
  EXPECT_EQ(a.total_dispatched, b.total_dispatched);
  EXPECT_EQ(a.total_committed, b.total_committed);
  EXPECT_EQ(a.total_abandoned, b.total_abandoned);
  EXPECT_EQ(a.total_rejected, b.total_rejected);
  EXPECT_EQ(a.total_rejected_deliveries, b.total_rejected_deliveries);
  EXPECT_EQ(a.total_rejected_bytes, b.total_rejected_bytes);
  EXPECT_EQ(a.total_wasted_uplink_bytes, b.total_wasted_uplink_bytes);
  EXPECT_EQ(a.final_buffered, b.final_buffered);
  EXPECT_EQ(a.final_in_flight, b.final_in_flight);
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << "param " << i;
  }
}

// Checkpoint writes must not perturb the trajectory: a run that snapshots
// every round equals a run that never checkpoints.
TEST(EngineCheckpoint, WritingSnapshotsDoesNotPerturbTheRun) {
  const std::string dir = fresh_dir("inert");
  RunSpec spec;
  const auto with = run_with_checkpoints(spec, dir, /*resume=*/false);
  const auto without = run_with_checkpoints(spec, "", /*resume=*/false);
  expect_resumed_identical(with, without);
  EXPECT_EQ(checkpoint::list_snapshots(dir).size(), spec.rounds + 0u);
}

// Resume from every intermediate snapshot of an interrupted run and demand
// the full trajectory back, bit for bit.
struct ResumeCase {
  std::string tag;
  RunSpec spec;
};

class EngineResume : public ::testing::TestWithParam<ResumeCase> {};

TEST_P(EngineResume, ResumedRunIsBitIdenticalFromEverySnapshot) {
  const RunSpec& spec = GetParam().spec;
  const std::string full_dir = fresh_dir(GetParam().tag + "_full");
  const auto uninterrupted =
      run_with_checkpoints(spec, full_dir, /*resume=*/false);
  const auto snapshots = checkpoint::list_snapshots(full_dir);
  ASSERT_GE(snapshots.size(), spec.rounds);
  // "Interrupt" after round k by handing resume only the first k snapshots.
  for (std::size_t k = 1; k <= spec.rounds; ++k) {
    const std::string resume_dir =
        fresh_dir(GetParam().tag + "_k" + std::to_string(k));
    fs::copy_file(snapshots[k - 1],
                  fs::path(resume_dir) / fs::path(snapshots[k - 1]).filename());
    const auto resumed =
        run_with_checkpoints(spec, resume_dir, /*resume=*/true);
    expect_resumed_identical(resumed, uninterrupted);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Coverage, EngineResume,
    ::testing::Values(
        ResumeCase{"barrier_fedavg", {fl::AggregationMode::kBarrier, 1, 3}},
        ResumeCase{"barrier_fedbiad",
                   {fl::AggregationMode::kBarrier, 1, 3, /*fedbiad=*/true}},
        ResumeCase{"fedasync", {fl::AggregationMode::kFedAsync, 1, 3}},
        ResumeCase{"buffered", {fl::AggregationMode::kBufferedK, 1, 3}},
        ResumeCase{"barrier_threads4",
                   {fl::AggregationMode::kBarrier, 4, 3, /*fedbiad=*/true}},
        ResumeCase{"faults_barrier",
                   {fl::AggregationMode::kBarrier, 1, 3, false, /*faults=*/true}},
        ResumeCase{"faults_buffered_threads4",
                   {fl::AggregationMode::kBufferedK, 4, 3, false,
                    /*faults=*/true}}),
    [](const auto& info) { return info.param.tag; });

// A torn newest snapshot falls back to the previous one — and the resumed
// run still reproduces the uninterrupted trajectory.
TEST(EngineCheckpoint, ResumeFallsBackPastTornSnapshot) {
  RunSpec spec;
  spec.rounds = 3;
  const std::string full_dir = fresh_dir("fallback_full");
  const auto uninterrupted =
      run_with_checkpoints(spec, full_dir, /*resume=*/false);
  const auto snapshots = checkpoint::list_snapshots(full_dir);
  ASSERT_GE(snapshots.size(), 2u);
  const std::string resume_dir = fresh_dir("fallback_resume");
  fs::copy_file(snapshots[0],
                fs::path(resume_dir) / fs::path(snapshots[0]).filename());
  fs::copy_file(snapshots[1],
                fs::path(resume_dir) / fs::path(snapshots[1]).filename());
  {
    // Tear snapshot 2 mid-file.
    const auto torn = checkpoint::list_snapshots(resume_dir)[1];
    std::ifstream in(torn, std::ios::binary);
    std::vector<char> all((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    all.resize(all.size() - 7);
    std::ofstream out(torn, std::ios::binary | std::ios::trunc);
    out.write(all.data(), static_cast<std::streamsize>(all.size()));
  }
  const auto resumed = run_with_checkpoints(spec, resume_dir, /*resume=*/true);
  expect_resumed_identical(resumed, uninterrupted);
}

// Resume with no snapshot at all starts from scratch — same trajectory as a
// fresh run.
TEST(EngineCheckpoint, ResumeWithEmptyDirectoryStartsFresh) {
  RunSpec spec;
  spec.rounds = 2;
  const std::string dir = fresh_dir("empty_resume");
  const auto resumed = run_with_checkpoints(spec, dir, /*resume=*/true);
  const auto fresh = run_with_checkpoints(spec, "", /*resume=*/false);
  expect_resumed_identical(resumed, fresh);
}

// A snapshot from a mismatched run configuration must be refused loudly,
// not silently resumed into a diverging trajectory.
TEST(EngineCheckpoint, ResumeRejectsMismatchedSnapshot) {
  RunSpec barrier_spec;
  barrier_spec.rounds = 2;
  const std::string dir = fresh_dir("mismatch");
  run_with_checkpoints(barrier_spec, dir, /*resume=*/false);
  RunSpec async_spec;
  async_spec.rounds = 2;
  async_spec.mode = fl::AggregationMode::kFedAsync;
  EXPECT_THROW(run_with_checkpoints(async_spec, dir, /*resume=*/true),
               CheckError);
}

// --- Strategy state blobs -------------------------------------------------

TEST(StrategyState, FedAvgRoundTripsEmptyBlob) {
  baselines::FedAvgStrategy strategy;
  EXPECT_TRUE(strategy.save_state().empty());
  strategy.load_state({});  // accepts its own (empty) blob
}

TEST(StrategyState, FedBiadRejectsForeignBlob) {
  core::FedBiadStrategy strategy(
      core::FedBiadConfig{.dropout_rate = 0.5, .tau = 2});
  // {1,2,3}: one client, id 2, 3 score rows — then the reader underflows.
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  EXPECT_THROW(strategy.load_state(garbage), wire::DecodeError);
  baselines::FedAvgStrategy fedavg;
  EXPECT_THROW(fedavg.load_state(garbage), CheckError);
}

}  // namespace
}  // namespace fedbiad
