// Unit tests for the thread pool, parallel_for, and the OrderedResults
// ticketed completion queue behind the transport decode pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/ordered_results.hpp"
#include "parallel/thread_pool.hpp"

namespace fedbiad::parallel {
namespace {

TEST(ThreadPool, DefaultSizeMatchesHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ForEachIndexCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each_index(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ForEachIndexZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.for_each_index(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = running.fetch_add(1) + 1;
      int old_peak = peak.load();
      while (old_peak < now && !peak.compare_exchange_weak(old_peak, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      running.fetch_sub(1);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GT(peak.load(), 1);
}

TEST(ParallelFor, MatchesSerialResult) {
  std::vector<double> out(50000, 0.0);
  parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ParallelFor, SmallRangesRunSerially) {
  // Below the grain threshold the calling thread does the work itself.
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(3);
  parallel_for(ids.size(), [&](std::size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const auto id : ids) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  // A worker-thread nested parallel_for must degrade to serial instead of
  // waiting on the pool it occupies.
  std::atomic<int> total{0};
  parallel_for(
      ThreadPool::global().size() * 4,
      [&](std::size_t) {
        parallel_for(
            100000, [&](std::size_t) { total.fetch_add(1); }, 1000);
      },
      1 << 20);
  EXPECT_EQ(total.load(),
            static_cast<int>(ThreadPool::global().size() * 4 * 100000));
}

TEST(ParallelForRange, ChunksPartitionTheRange) {
  // The range overload must hand out disjoint [begin, end) chunks covering
  // [0, n) exactly once — every index incremented exactly one time.
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        ASSERT_LE(begin, end);
        ASSERT_LE(end, n);
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      },
      64);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelForRange, SmallAndNestedRunOnCaller) {
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  std::size_t calls = 0;
  parallel_for(3, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 3u);
    seen = std::this_thread::get_id();
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(seen, caller);

  // From a pool worker the range overload degrades to one serial call.
  std::atomic<std::size_t> nested_calls{0};
  parallel_for(
      ThreadPool::global().size() * 2,
      [&](std::size_t) {
        parallel_for(
            100000,
            [&](std::size_t begin, std::size_t end) {
              if (begin == 0 && end == 100000) nested_calls.fetch_add(1);
            },
            1000);
      },
      1 << 20);
  EXPECT_EQ(nested_calls.load(), ThreadPool::global().size() * 2);
}

TEST(OrderedResults, DrainDeliversInSubmissionOrderDespiteCompletionOrder) {
  // Earlier submissions sleep longer, so completion order is the reverse of
  // submission order — drain must still deliver 0..7 ascending.
  ThreadPool pool(4);
  OrderedResults<int> results(pool, 8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(results.try_submit([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds((8 - i) * 3));
      return i;
    }));
  }
  EXPECT_TRUE(results.full());
  std::vector<int> drained;
  EXPECT_EQ(results.drain([&](int&& v) { drained.push_back(v); }), 8u);
  EXPECT_EQ(drained, std::vector<int>({0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(results.pending(), 0u);
  EXPECT_FALSE(results.full());
}

TEST(OrderedResults, TrySubmitRefusesAtDepthWithoutConsuming) {
  ThreadPool pool(2);
  OrderedResults<int> results(pool, 2);
  ASSERT_TRUE(results.try_submit([] { return 1; }));
  ASSERT_TRUE(results.try_submit([] { return 2; }));
  // The refused callable must not run — parking hands the same work back.
  std::atomic<bool> ran{false};
  EXPECT_FALSE(results.try_submit([&] {
    ran.store(true);
    return 3;
  }));
  EXPECT_EQ(results.pending(), 2u);
  std::vector<int> drained;
  results.drain([&](int&& v) { drained.push_back(v); });
  EXPECT_EQ(drained, std::vector<int>({1, 2}));
  EXPECT_FALSE(ran.load());
  // After the drain the queue has room again.
  ASSERT_TRUE(results.try_submit([] { return 4; }));
  results.drain([&](int&& v) { drained.push_back(v); });
  EXPECT_EQ(drained, std::vector<int>({1, 2, 4}));
}

TEST(OrderedResults, DrainReadyStopsAtFirstUnfinishedJob) {
  ThreadPool pool(2);
  OrderedResults<int> results(pool, 4);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  ASSERT_TRUE(results.try_submit([] { return 1; }));
  ASSERT_TRUE(results.try_submit([open] {
    open.wait();
    return 2;
  }));
  ASSERT_TRUE(results.try_submit([] { return 3; }));
  // Job 3 may finish long before job 2, but drain_ready must never deliver
  // it early: it stops at the gated head.
  std::vector<int> got;
  while (got.empty()) {
    results.drain_ready([&](int&& v) { got.push_back(v); });
  }
  EXPECT_EQ(got, std::vector<int>({1}));
  EXPECT_EQ(results.pending(), 2u);
  gate.set_value();
  results.drain([&](int&& v) { got.push_back(v); });
  EXPECT_EQ(got, std::vector<int>({1, 2, 3}));
}

TEST(OrderedResults, MoveOnlyResultsAndExceptionsFlowThrough) {
  ThreadPool pool(2);
  OrderedResults<std::unique_ptr<int>> results(pool, 2);
  ASSERT_TRUE(results.try_submit([] { return std::make_unique<int>(7); }));
  std::vector<int> vals;
  results.drain([&](std::unique_ptr<int>&& p) { vals.push_back(*p); });
  EXPECT_EQ(vals, std::vector<int>({7}));
  // A throwing job surfaces at drain time, on the consumer thread.
  ASSERT_TRUE(results.try_submit([]() -> std::unique_ptr<int> {
    throw std::runtime_error("decode failed");
  }));
  EXPECT_THROW(results.drain([](std::unique_ptr<int>&&) {}),
               std::runtime_error);
  EXPECT_EQ(results.pending(), 0u);
}

TEST(ThreadPool, NestedForEachFromWorkerRunsSerially) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  auto fut = pool.submit([&] {
    // Direct nested use of the same pool from a worker.
    ThreadPool::global().for_each_index(10,
                                        [&](std::size_t) { count.fetch_add(1); });
  });
  fut.get();
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace fedbiad::parallel
