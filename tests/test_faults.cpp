// Tests for the fault-injection subsystem: the CRC32C frame layer, the
// non-throwing context-wrapped decode path, strict parsing of the scenario
// `faults` block, the keyed FaultInjector draws, and the engine
// integration — corrupt-delivery rejection with retry/backoff, duplicate
// idempotence, the extended conservation ledger, and thread-count
// determinism under simultaneous corruption + churn + deadline pressure.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fedavg.hpp"
#include "common/check.hpp"
#include "data/image_synth.hpp"
#include "data/partition.hpp"
#include "fl/async_simulation.hpp"
#include "fl/engine_hooks.hpp"
#include "fl/strategy.hpp"
#include "netsim/client_profile.hpp"
#include "nn/mlp_model.hpp"
#include "scenario/config.hpp"
#include "scenario/model.hpp"
#include "tensor/rng.hpp"
#include "wire/accounting.hpp"
#include "wire/crc32c.hpp"
#include "wire/reader.hpp"
#include "wire/update_codec.hpp"

namespace fedbiad {
namespace {

// --- CRC32C and the frame trailer -----------------------------------------

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32c, KnownAnswerAndEmpty) {
  const auto check = bytes_of("123456789");
  EXPECT_EQ(wire::crc32c(check), 0xE3069283u);
  EXPECT_EQ(wire::crc32c(std::vector<std::uint8_t>{}), 0u);
}

TEST(Crc32c, ChainedUpdatesMatchOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  const std::uint32_t whole = wire::crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::span<const std::uint8_t> all(data);
    const std::uint32_t part = wire::crc32c(all.first(split));
    EXPECT_EQ(wire::crc32c(all.subspan(split), part), whole) << split;
  }
}

TEST(Crc32c, SoftwarePathMatchesKnownAnswer) {
  // The slice-by-8 table walk is the portable fallback behind the
  // dispatching entry point; pin it independently so a broken table is
  // caught even on hosts where the SSE4.2 path handles every call.
  EXPECT_EQ(wire::crc32c_sw(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(wire::crc32c_sw(std::vector<std::uint8_t>{}), 0u);
}

TEST(Crc32c, HardwareAndSoftwareAgreeAcrossLengthsOffsetsAndChains) {
  tensor::Rng rng(0xC5C);
  std::vector<std::uint8_t> data(1031);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  const std::span<const std::uint8_t> all(data);
  // Lengths straddling the alignment prologue, the 8-byte main loops of
  // both paths, and their byte tails.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{63},
        std::size_t{64}, std::size_t{65}, std::size_t{511}, std::size_t{1024},
        std::size_t{1031}}) {
    EXPECT_EQ(wire::crc32c(all.first(len)), wire::crc32c_sw(all.first(len)))
        << "length " << len;
  }
  // Misaligned buffer starts exercise the hardware prologue.
  for (std::size_t off = 0; off < 9; ++off) {
    EXPECT_EQ(wire::crc32c(all.subspan(off)), wire::crc32c_sw(all.subspan(off)))
        << "offset " << off;
  }
  // Chains may switch implementations mid-stream (a checkpoint written on
  // SSE4.2 hardware, verified on a portable build): a software head must
  // continue under the dispatching path and land on the same digest.
  const std::uint32_t whole = wire::crc32c_sw(all);
  for (std::size_t split = 0; split <= data.size(); split += 97) {
    const std::uint32_t head = wire::crc32c_sw(all.first(split));
    EXPECT_EQ(wire::crc32c(all.subspan(split), head), whole) << split;
  }
}

wire::Payload sealed_payload(std::size_t body_bytes, std::uint64_t seed) {
  wire::Payload p;
  tensor::Rng rng(seed);
  p.bytes.resize(body_bytes);
  for (auto& b : p.bytes) {
    b = static_cast<std::uint8_t>(rng.uniform_index(256));
  }
  wire::seal_payload(p);
  return p;
}

TEST(CrcFrame, SealVerifyStripRoundTrip) {
  for (const std::size_t body : {std::size_t{0}, std::size_t{1},
                                 std::size_t{57}, std::size_t{4096}}) {
    wire::Payload p = sealed_payload(body, 11 + body);
    const wire::Payload original = sealed_payload(body, 11 + body);
    EXPECT_EQ(p.size(), wire::framed_bytes(body));
    EXPECT_TRUE(wire::verify_seal(p));
    wire::strip_seal(p);
    EXPECT_EQ(p.size(), body);
    // strip removed exactly the trailer: the body bytes are untouched.
    for (std::size_t i = 0; i < body; ++i) {
      ASSERT_EQ(p.bytes[i], original.bytes[i]);
    }
  }
}

TEST(CrcFrame, DetectsEverySingleBitFlip) {
  const wire::Payload sealed = sealed_payload(24, 3);
  for (std::size_t bit = 0; bit < sealed.size() * 8; ++bit) {
    wire::Payload p = sealed;
    p.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(wire::verify_seal(p)) << "bit " << bit;
    EXPECT_THROW(wire::strip_seal(p), wire::DecodeError);
  }
}

TEST(CrcFrame, DetectsEveryTruncation) {
  const wire::Payload sealed = sealed_payload(32, 5);
  for (std::size_t cut = 0; cut < sealed.size(); ++cut) {
    wire::Payload p = sealed;
    p.bytes.resize(cut);
    EXPECT_FALSE(wire::verify_seal(p)) << "cut " << cut;
    EXPECT_THROW(wire::strip_seal(p), wire::DecodeError);
  }
}

TEST(CrcFrame, VerifyRejectsFrameShorterThanTrailer) {
  wire::Payload p;
  p.bytes = {1, 2, 3};  // < kCrcTrailerBytes
  EXPECT_FALSE(wire::verify_seal(p));
  EXPECT_THROW(wire::strip_seal(p), wire::DecodeError);
}

// --- try_decode_outcome: non-throwing, context-wrapped --------------------

struct DecodeRig {
  std::unique_ptr<nn::Model> model;
  fl::ClientOutcome outcome;  ///< encoded dense-f32 upload, unsealed
  baselines::FedAvgStrategy strategy;
};

DecodeRig make_decode_rig() {
  DecodeRig rig;
  rig.model = std::make_unique<nn::MlpModel>(
      nn::MlpConfig{.input = 16, .hidden = 4, .classes = 3});
  {
    tensor::Rng init(21);
    rig.model->init_params(init);
  }
  std::vector<float> values(rig.model->store().size());
  tensor::Rng rng(9);
  for (auto& v : values) v = static_cast<float>(rng.normal());
  rig.outcome.samples = 8;
  rig.outcome.payload = wire::encode_dense_f32(values);
  return rig;
}

TEST(TryDecode, FramedSuccessChargesWireBytes) {
  DecodeRig rig = make_decode_rig();
  const std::uint64_t body = rig.outcome.payload.size();
  wire::seal_payload(rig.outcome.payload);
  const auto status =
      fl::try_decode_outcome(rig.strategy, rig.model->store(), rig.outcome,
                             /*framed=*/true, {7, 42, 3.5});
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(rig.outcome.values.size(), rig.model->store().size());
  // The trailer is on-the-wire traffic: uplink charges the framed size.
  EXPECT_EQ(rig.outcome.uplink_bytes, wire::framed_bytes(body));
}

TEST(TryDecode, UnframedSuccessMatchesThrowingDecode) {
  DecodeRig a = make_decode_rig();
  DecodeRig b = make_decode_rig();
  const auto status = fl::try_decode_outcome(a.strategy, a.model->store(),
                                             a.outcome, /*framed=*/false, {});
  ASSERT_TRUE(status.ok) << status.error;
  fl::decode_outcome(b.strategy, b.model->store(), b.outcome);
  ASSERT_EQ(a.outcome.values.size(), b.outcome.values.size());
  for (std::size_t i = 0; i < a.outcome.values.size(); ++i) {
    ASSERT_EQ(a.outcome.values[i], b.outcome.values[i]);
  }
  EXPECT_EQ(a.outcome.uplink_bytes, b.outcome.uplink_bytes);
}

TEST(TryDecode, CorruptFrameWrapsDispatchContext) {
  DecodeRig rig = make_decode_rig();
  wire::seal_payload(rig.outcome.payload);
  rig.outcome.payload.bytes[5] ^= 0x10;
  const auto status =
      fl::try_decode_outcome(rig.strategy, rig.model->store(), rig.outcome,
                             /*framed=*/true, {7, 42, 3.5});
  ASSERT_FALSE(status.ok);
  EXPECT_NE(status.error.find("client 7"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("dispatch 42"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("t=3.5"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("rejected:"), std::string::npos) << status.error;
  // The failed outcome is left undecoded — retryable, never half-charged.
  EXPECT_TRUE(rig.outcome.values.empty());
  EXPECT_EQ(rig.outcome.uplink_bytes, 0u);
}

TEST(TryDecode, TruncatedFrameRejectsWithoutThrowing) {
  DecodeRig rig = make_decode_rig();
  wire::seal_payload(rig.outcome.payload);
  rig.outcome.payload.bytes.resize(rig.outcome.payload.size() / 2);
  const auto status = fl::try_decode_outcome(
      rig.strategy, rig.model->store(), rig.outcome, /*framed=*/true, {1, 2, 0.0});
  ASSERT_FALSE(status.ok);
  EXPECT_TRUE(rig.outcome.values.empty());
}

TEST(TryDecode, GarbageBodyRejectsEvenUnframed) {
  DecodeRig rig = make_decode_rig();
  rig.outcome.payload.bytes.resize(3);  // too short for any section header
  const auto status = fl::try_decode_outcome(
      rig.strategy, rig.model->store(), rig.outcome, /*framed=*/false, {0, 0, 0.0});
  ASSERT_FALSE(status.ok);
}

// --- scenario `faults` block: strict parsing ------------------------------

scenario::Config faults_config() {
  scenario::Config cfg;
  cfg.name = "faulty";
  cfg.seed = 77;
  cfg.faults = scenario::FaultsConfig{
      .corruption_probability = 0.05,
      .corruption_mode = scenario::CorruptionMode::kTruncate,
      .duplicate_probability = 0.02,
      .retry = {.max_attempts = 3,
                .backoff_seconds = 0.5,
                .backoff_multiplier = 2.0,
                .jitter_fraction = 0.25},
  };
  return cfg;
}

TEST(FaultsConfig, RoundTripsCanonicalJson) {
  const scenario::Config cfg = faults_config();
  const scenario::Config back = scenario::Config::from_json(cfg.to_json());
  EXPECT_EQ(back, cfg);
  EXPECT_TRUE(cfg.active());
}

TEST(FaultsConfig, FaultsSectionAloneMakesConfigActive) {
  scenario::Config cfg;
  EXPECT_FALSE(cfg.active());
  cfg.faults = scenario::FaultsConfig{};
  EXPECT_TRUE(cfg.active());
}

TEST(FaultsConfig, ParsesFullBlock) {
  const auto cfg = scenario::Config::from_json(R"({
    "faults": {
      "corruption_probability": 0.1,
      "corruption_mode": "truncate",
      "duplicate_probability": 0.05,
      "retry": {"max_attempts": 4, "backoff_seconds": 2.0,
                "backoff_multiplier": 1.5, "jitter_fraction": 0.5}
    }
  })");
  ASSERT_TRUE(cfg.faults.has_value());
  EXPECT_EQ(cfg.faults->corruption_probability, 0.1);
  EXPECT_EQ(cfg.faults->corruption_mode, scenario::CorruptionMode::kTruncate);
  EXPECT_EQ(cfg.faults->duplicate_probability, 0.05);
  EXPECT_EQ(cfg.faults->retry.max_attempts, 4u);
  EXPECT_EQ(cfg.faults->retry.backoff_seconds, 2.0);
  EXPECT_EQ(cfg.faults->retry.backoff_multiplier, 1.5);
  EXPECT_EQ(cfg.faults->retry.jitter_fraction, 0.5);
}

TEST(FaultsConfig, RejectsUnknownKeys) {
  EXPECT_THROW(
      scenario::Config::from_json(R"({"faults": {"corruption": 0.1}})"),
      CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"retry": {"attempts": 3}}})"),
               CheckError);
}

TEST(FaultsConfig, RejectsOutOfRangeValues) {
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"corruption_probability": 0.96}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"corruption_probability": -0.1}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"duplicate_probability": 1.0}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"retry": {"max_attempts": 0}}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"retry": {"max_attempts": 17}}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"retry": {"max_attempts": 2.5}}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"retry": {"backoff_seconds": 0.0}}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"retry": {"backoff_multiplier": 0.5}}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"retry": {"jitter_fraction": 1.0}}})"),
               CheckError);
}

TEST(FaultsConfig, RejectsBadCorruptionMode) {
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"corruption_mode": "bitflip"}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"faults": {"corruption_mode": 1}})"),
               CheckError);
}

TEST(FaultsConfig, ValidateCatchesMutationsAfterParse) {
  scenario::Config cfg = faults_config();
  cfg.validate();
  cfg.faults->retry.backoff_multiplier = 100.0;
  EXPECT_THROW(cfg.validate(), CheckError);
}

// --- FaultInjector draws --------------------------------------------------

TEST(FaultInjector, DisabledNeverFaults) {
  const scenario::FaultInjector off(std::nullopt, 5);
  EXPECT_FALSE(off.enabled());
  for (std::size_t s = 0; s < 100; ++s) {
    const auto f = off.decide(s % 7, s, 1);
    EXPECT_FALSE(f.corrupt);
    EXPECT_FALSE(f.duplicate);
  }
}

TEST(FaultInjector, DeterministicAndAttemptKeyed) {
  scenario::FaultsConfig fc;
  fc.corruption_probability = 0.5;
  fc.duplicate_probability = 0.3;
  const scenario::FaultInjector a(fc, 13);
  const scenario::FaultInjector b(fc, 13);
  bool attempts_differ = false;
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t s = 0; s < 40; ++s) {
      for (std::size_t attempt = 1; attempt <= 3; ++attempt) {
        const auto fa = a.decide(c, s, attempt);
        const auto fb = b.decide(c, s, attempt);
        EXPECT_EQ(fa.corrupt, fb.corrupt);
        EXPECT_EQ(fa.position, fb.position);
        EXPECT_EQ(fa.duplicate, fb.duplicate);
        EXPECT_EQ(fa.duplicate_lag, fb.duplicate_lag);
        EXPECT_EQ(a.jitter(c, s, attempt), b.jitter(c, s, attempt));
        attempts_differ |= fa.corrupt != a.decide(c, s, attempt + 3).corrupt;
      }
    }
  }
  EXPECT_TRUE(attempts_differ) << "retries must draw independently";
}

TEST(FaultInjector, DrawsRespectRangesAndExclusivity) {
  scenario::FaultsConfig fc;
  fc.corruption_probability = 0.4;
  fc.corruption_mode = scenario::CorruptionMode::kTruncate;
  fc.duplicate_probability = 0.4;
  const scenario::FaultInjector inj(fc, 29);
  std::size_t corrupt = 0;
  std::size_t duplicate = 0;
  const std::size_t draws = 4000;
  for (std::size_t s = 0; s < draws; ++s) {
    const auto f = inj.decide(s % 11, s, 1 + s % 3);
    if (f.corrupt) {
      ++corrupt;
      EXPECT_TRUE(f.truncate);
      EXPECT_GE(f.position, 0.0);
      EXPECT_LT(f.position, 1.0);
      // A corrupt delivery never also duplicates: the frame was dropped.
      EXPECT_FALSE(f.duplicate);
    }
    if (f.duplicate) {
      ++duplicate;
      EXPECT_GT(f.duplicate_lag, 0.0);
      EXPECT_LE(f.duplicate_lag, 1.0);
    }
    const double j = inj.jitter(s % 11, s, 1);
    EXPECT_GE(j, 0.0);
    EXPECT_LT(j, 1.0);
  }
  EXPECT_NEAR(static_cast<double>(corrupt) / draws, 0.4, 0.04);
  // Duplicates are drawn only on intact deliveries: marginal ≈ (1-p)·q.
  EXPECT_NEAR(static_cast<double>(duplicate) / draws, 0.6 * 0.4, 0.04);
}

// --- Engine integration fixtures ------------------------------------------

constexpr std::size_t kClients = 6;

struct Fixture {
  fl::SimulationConfig sim;
  data::DatasetPtr train;
  data::DatasetPtr test;
  data::Partition partition;
  nn::ModelFactory factory;
};

Fixture make_fixture(std::size_t threads, std::size_t rounds = 4) {
  Fixture fx;
  fx.sim.rounds = rounds;
  fx.sim.selection_fraction = 0.5;
  fx.sim.train.local_iterations = 3;
  fx.sim.train.batch_size = 8;
  fx.sim.train.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};
  fx.sim.seed = 9;
  fx.sim.threads = threads;
  auto img_cfg = data::ImageSynthConfig::mnist_like(3);
  img_cfg.train_samples = 96;
  img_cfg.test_samples = 30;
  img_cfg.height = 10;
  img_cfg.width = 10;
  const auto datasets = data::make_image_datasets(img_cfg);
  fx.train = datasets.train;
  fx.test = datasets.test;
  tensor::Rng prng(5);
  fx.partition = data::partition_iid(datasets.train->size(), kClients, prng);
  fx.factory = [] {
    return std::make_unique<nn::MlpModel>(
        nn::MlpConfig{.input = 100, .hidden = 8, .classes = 10});
  };
  return fx;
}

netsim::HeterogeneityConfig stressed_fleet() {
  netsim::HeterogeneityConfig h;
  h.compute_spread = 6.0;
  h.bandwidth_spread = 3.0;
  h.straggler_fraction = 0.3;
  h.straggler_multiplier = 4.0;
  return h;
}

fl::SimulationResult run_hooked(std::shared_ptr<fl::EngineHooks> hooks,
                                const std::string& name,
                                fl::AggregationMode mode, std::size_t threads,
                                std::size_t rounds = 4,
                                std::size_t buffer_k = 2) {
  Fixture fx = make_fixture(threads, rounds);
  fl::AsyncSimulationConfig cfg;
  cfg.base = fx.sim;
  cfg.mode = mode;
  cfg.buffer_size = buffer_k;
  cfg.heterogeneity = stressed_fleet();
  cfg.hooks = std::move(hooks);
  cfg.scenario_name = name;
  fl::AsyncSimulation sim(cfg, fx.factory, fx.train, fx.test, fx.partition,
                          std::make_shared<baselines::FedAvgStrategy>());
  return sim.run();
}

fl::SimulationResult run_scenario(const scenario::Config& cfg,
                                  fl::AggregationMode mode,
                                  std::size_t threads, std::size_t rounds = 4,
                                  std::size_t buffer_k = 2) {
  return run_hooked(scenario::make_engine_hooks(cfg, kClients), cfg.name, mode,
                    threads, rounds, buffer_k);
}

// The extended conservation law: dispatched = committed + abandoned +
// rejected + buffered + in-flight, with the delivery-level ledger bounded
// below by the terminal rejections it must contain.
void expect_conserved(const fl::SimulationResult& r) {
  EXPECT_EQ(r.total_dispatched, r.total_committed + r.total_abandoned +
                                    r.total_rejected + r.final_buffered +
                                    r.final_in_flight);
  std::size_t parts = 0;
  std::size_t rejected = 0;
  std::uint64_t rejected_bytes = 0;
  double clock = 0.0;
  for (const auto& rec : r.rounds) {
    parts += rec.participants;
    rejected += rec.rejected;
    rejected_bytes += rec.rejected_bytes;
    EXPECT_GE(rec.participants, 1u);
    EXPECT_GE(rec.clock_seconds, clock) << "clock moved backwards";
    clock = rec.clock_seconds;
  }
  EXPECT_EQ(parts, r.total_committed);
  // Rejections after the final commit stay out of every RoundRecord.
  EXPECT_LE(rejected, r.total_rejected);
  EXPECT_LE(rejected_bytes, r.total_rejected_bytes);
  // Every terminal rejection burned at least one delivery; duplicates and
  // retried attempts push the delivery count above the dispatch count.
  EXPECT_GE(r.total_rejected_deliveries, r.total_rejected);
  const double f = r.dropped_upload_fraction();
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

void expect_identical(const fl::SimulationResult& a,
                      const fl::SimulationResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].participants, b.rounds[i].participants);
    EXPECT_EQ(a.rounds[i].uplink_bytes_total, b.rounds[i].uplink_bytes_total);
    EXPECT_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss) << "round " << i;
    EXPECT_EQ(a.rounds[i].test_loss, b.rounds[i].test_loss) << "round " << i;
    EXPECT_EQ(a.rounds[i].clock_seconds, b.rounds[i].clock_seconds);
    EXPECT_EQ(a.rounds[i].abandoned, b.rounds[i].abandoned);
    EXPECT_EQ(a.rounds[i].rejected, b.rounds[i].rejected);
    EXPECT_EQ(a.rounds[i].rejected_bytes, b.rounds[i].rejected_bytes);
  }
  EXPECT_EQ(a.total_dispatched, b.total_dispatched);
  EXPECT_EQ(a.total_committed, b.total_committed);
  EXPECT_EQ(a.total_abandoned, b.total_abandoned);
  EXPECT_EQ(a.total_rejected, b.total_rejected);
  EXPECT_EQ(a.total_rejected_deliveries, b.total_rejected_deliveries);
  EXPECT_EQ(a.total_rejected_bytes, b.total_rejected_bytes);
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << "param " << i;
  }
}

// Programmable fault hooks: everything available, no churn, scripted
// delivery faults and a fixed retry policy.
struct FaultHooks final : fl::EngineHooks {
  std::function<fl::DeliveryFault(std::size_t, std::size_t, std::size_t)>
      fault_fn;
  fl::RetryPolicy policy{.max_attempts = 1};

  bool client_available(std::size_t, double) override { return true; }
  double next_available_time(std::size_t, double now) override { return now; }
  fl::ChurnDecision churn(std::size_t, std::size_t) override { return {}; }
  double deadline_seconds() const override { return 0.0; }
  double over_selection() const override { return 1.0; }
  bool faults_enabled() const override { return true; }
  fl::DeliveryFault delivery_fault(std::size_t client, std::size_t seq,
                                   std::size_t attempt) override {
    return fault_fn ? fault_fn(client, seq, attempt) : fl::DeliveryFault{};
  }
  fl::RetryPolicy retry_policy() const override { return policy; }
};

// --- Engine: rejection, retry, duplicates ---------------------------------

// Fault framing with no actual faults: every upload gains exactly the
// 4-byte trailer relative to the clean run, nothing is rejected, and the
// trajectory's model math is unchanged (the trailer is stripped before
// decoding, so the committed floats are identical).
TEST(EngineFaults, NullFaultRunSealsButNeverRejects) {
  auto clean_hooks = std::make_shared<FaultHooks>();
  // Same hooks but with faults_enabled false via a scenario-free run is not
  // comparable (hooks change dispatch budgeting), so compare two fault
  // sessions: framing is deterministic overhead.
  const auto r = run_hooked(clean_hooks, "null_faults",
                            fl::AggregationMode::kBarrier, 2);
  expect_conserved(r);
  EXPECT_EQ(r.total_rejected, 0u);
  EXPECT_EQ(r.total_rejected_deliveries, 0u);
  EXPECT_EQ(r.total_rejected_bytes, 0u);
  for (const auto& rec : r.rounds) {
    // Every participant's uplink is its payload + one CRC trailer.
    EXPECT_EQ(rec.uplink_bytes_total % wire::framed_bytes(0), 0u);
  }
}

// One scripted corrupt first delivery, intact retry: the dispatch commits,
// one rejected delivery is charged, no dispatch is terminally rejected, and
// the backoff delays the commit clock.
TEST(EngineFaults, CorruptFirstAttemptRetriesAndCommits) {
  auto faulty = std::make_shared<FaultHooks>();
  faulty->policy = {.max_attempts = 2, .backoff_seconds = 0.25};
  faulty->fault_fn = [](std::size_t, std::size_t seq, std::size_t attempt) {
    fl::DeliveryFault f;
    if (seq == 0 && attempt == 1) {
      f.corrupt = true;
      f.position = 0.4;
    }
    return f;
  };
  auto clean = std::make_shared<FaultHooks>();
  clean->policy = faulty->policy;
  const auto r = run_hooked(faulty, "retry_ok", fl::AggregationMode::kBarrier,
                            1, /*rounds=*/1);
  const auto base = run_hooked(clean, "no_faults",
                               fl::AggregationMode::kBarrier, 1, /*rounds=*/1);
  expect_conserved(r);
  EXPECT_EQ(r.total_rejected, 0u);
  EXPECT_EQ(r.total_rejected_deliveries, 1u);
  EXPECT_GT(r.total_rejected_bytes, 0u);
  ASSERT_EQ(r.rounds.size(), 1u);
  ASSERT_EQ(base.rounds.size(), 1u);
  // Same cohort commits (the retry saved the dispatch)…
  EXPECT_EQ(r.rounds[0].participants, base.rounds[0].participants);
  ASSERT_EQ(r.final_params.size(), base.final_params.size());
  for (std::size_t i = 0; i < r.final_params.size(); ++i) {
    ASSERT_EQ(r.final_params[i], base.final_params[i]) << "param " << i;
  }
  // …but strictly later: the backoff + retransmission is on the clock.
  EXPECT_GT(r.rounds[0].clock_seconds, base.rounds[0].clock_seconds);
}

// Every delivery of dispatch 0 corrupts with a 2-attempt budget: the
// dispatch is terminally rejected, and the barrier commits the partial
// cohort without it — exactly like an abandoned wave member.
TEST(EngineFaults, RetryBudgetDrainedRejectsTerminally) {
  auto hooks = std::make_shared<FaultHooks>();
  hooks->policy = {.max_attempts = 2, .backoff_seconds = 0.25};
  hooks->fault_fn = [](std::size_t, std::size_t seq, std::size_t) {
    fl::DeliveryFault f;
    if (seq == 0) {
      f.corrupt = true;
      f.truncate = true;
      f.position = 0.6;
    }
    return f;
  };
  const auto r = run_hooked(hooks, "retry_drained",
                            fl::AggregationMode::kBarrier, 1, /*rounds=*/1);
  expect_conserved(r);
  EXPECT_EQ(r.total_rejected, 1u);
  EXPECT_EQ(r.total_rejected_deliveries, 2u);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.rounds[0].rejected, 1u);
  EXPECT_EQ(r.rounds[0].participants, 2u);  // 3-member wave minus the reject
  EXPECT_EQ(r.rounds[0].abandoned, 0u);
}

// Duplicate deliveries never double-count: with every delivery duplicated,
// the trajectory (participants, committed totals, final params) is
// bit-identical to the duplicate-free run; only the delivery ledger grows.
class DuplicateIdempotence
    : public ::testing::TestWithParam<fl::AggregationMode> {};

TEST_P(DuplicateIdempotence, DuplicatesNeverChangeTheTrajectory) {
  auto duplicating = std::make_shared<FaultHooks>();
  duplicating->fault_fn = [](std::size_t, std::size_t, std::size_t) {
    return fl::DeliveryFault{.duplicate = true, .duplicate_lag = 0.5};
  };
  auto clean = std::make_shared<FaultHooks>();
  const auto dup = run_hooked(duplicating, "dup", GetParam(), 2, 3);
  const auto ref = run_hooked(clean, "nodup", GetParam(), 2, 3);
  expect_conserved(dup);
  EXPECT_EQ(dup.total_rejected, 0u);
  EXPECT_GT(dup.total_rejected_deliveries, 0u);
  EXPECT_GT(dup.total_rejected_bytes, 0u);
  EXPECT_EQ(dup.total_committed, ref.total_committed);
  EXPECT_EQ(dup.total_dispatched, ref.total_dispatched);
  ASSERT_EQ(dup.rounds.size(), ref.rounds.size());
  for (std::size_t i = 0; i < dup.rounds.size(); ++i) {
    EXPECT_EQ(dup.rounds[i].participants, ref.rounds[i].participants);
    EXPECT_EQ(dup.rounds[i].train_loss, ref.rounds[i].train_loss);
    EXPECT_EQ(dup.rounds[i].clock_seconds, ref.rounds[i].clock_seconds);
  }
  ASSERT_EQ(dup.final_params.size(), ref.final_params.size());
  for (std::size_t i = 0; i < dup.final_params.size(); ++i) {
    ASSERT_EQ(dup.final_params[i], ref.final_params[i]) << "param " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, DuplicateIdempotence,
                         ::testing::Values(fl::AggregationMode::kBarrier,
                                           fl::AggregationMode::kFedAsync,
                                           fl::AggregationMode::kBufferedK),
                         [](const auto& info) {
                           return std::string(fl::to_string(info.param));
                         });

// --- Declarative faults: determinism and the stress fuzz ------------------

scenario::Config stress_config(std::uint64_t seed) {
  scenario::Config cfg;
  cfg.name = "fault_stress";
  cfg.seed = seed;
  cfg.over_selection = 1.5;
  cfg.deadline_seconds = 2.5;
  cfg.churn = scenario::ChurnConfig{.failure_rate = 0.15};
  cfg.faults = scenario::FaultsConfig{
      .corruption_probability = 0.25,
      .corruption_mode = seed % 2 == 0 ? scenario::CorruptionMode::kBitFlip
                                       : scenario::CorruptionMode::kTruncate,
      .duplicate_probability = 0.15,
      .retry = {.max_attempts = 2,
                .backoff_seconds = 0.125,
                .backoff_multiplier = 2.0,
                .jitter_fraction = 0.5},
  };
  return cfg;
}

class FaultDeterminism
    : public ::testing::TestWithParam<fl::AggregationMode> {};

TEST_P(FaultDeterminism, ThreadCountInvariantUnderFullFaultPressure) {
  const scenario::Config cfg = stress_config(101);
  const auto t1 = run_scenario(cfg, GetParam(), 1, 3);
  const auto t4 = run_scenario(cfg, GetParam(), 4, 3);
  expect_identical(t1, t4);
  expect_conserved(t1);
}

INSTANTIATE_TEST_SUITE_P(AllModes, FaultDeterminism,
                         ::testing::Values(fl::AggregationMode::kBarrier,
                                           fl::AggregationMode::kFedAsync,
                                           fl::AggregationMode::kBufferedK),
                         [](const auto& info) {
                           return std::string(fl::to_string(info.param));
                         });

// 30-seed fuzz of the extended ledger under corruption + duplicates +
// churn + deadline simultaneously, cycling the aggregation mode. Every run
// must complete without throwing and conserve the dispatch ledger; across
// the population, both rejection ledgers must actually fire.
TEST(EngineFaults, FuzzedConservationUnderCombinedPressure) {
  constexpr fl::AggregationMode kModes[] = {fl::AggregationMode::kBarrier,
                                            fl::AggregationMode::kFedAsync,
                                            fl::AggregationMode::kBufferedK};
  std::size_t total_rejected = 0;
  std::size_t total_rejected_deliveries = 0;
  std::size_t total_abandoned = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const scenario::Config cfg = stress_config(1000 + seed);
    const auto r = run_scenario(cfg, kModes[seed % 3], 1, /*rounds=*/2);
    expect_conserved(r);
    EXPECT_EQ(r.rounds.size(), 2u) << "seed " << seed;
    total_rejected += r.total_rejected;
    total_rejected_deliveries += r.total_rejected_deliveries;
    total_abandoned += r.total_abandoned;
  }
  EXPECT_GT(total_rejected_deliveries, 0u)
      << "30 seeds at 25% corruption never dropped a delivery";
  EXPECT_GT(total_rejected + total_abandoned, 0u);
}

}  // namespace
}  // namespace fedbiad
