// Tests for the FL engine: aggregation rules, client-state store, metrics,
// the network model, and the simulation loop.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "baselines/fedavg.hpp"
#include "common/check.hpp"
#include "data/image_synth.hpp"
#include "data/partition.hpp"
#include "fl/aggregate.hpp"
#include "fl/client_state.hpp"
#include "fl/metrics.hpp"
#include "fl/simulation.hpp"
#include "netsim/link.hpp"
#include "netsim/tta.hpp"
#include "nn/mlp_model.hpp"

namespace fedbiad::fl {
namespace {

ClientOutcome make_outcome(std::vector<float> values,
                           std::vector<std::uint8_t> present,
                           std::size_t samples, bool is_update = false) {
  ClientOutcome o;
  o.values = std::move(values);
  o.present = wire::Bitset::from_bytemask(present);
  o.samples = samples;
  o.is_update = is_update;
  return o;
}

TEST(Aggregate, WeightedMeanWhenAllPresent) {
  std::vector<float> global{0.0F, 0.0F};
  std::vector<ClientOutcome> outs;
  outs.push_back(make_outcome({1.0F, 2.0F}, {1, 1}, 1));
  outs.push_back(make_outcome({3.0F, 6.0F}, {1, 1}, 3));
  aggregate(global, outs, AggregationRule::kPerCoordinateNormalized);
  EXPECT_FLOAT_EQ(global[0], (1.0F + 9.0F) / 4.0F);
  EXPECT_FLOAT_EQ(global[1], (2.0F + 18.0F) / 4.0F);
}

TEST(Aggregate, RulesAgreeWhenNothingIsDropped) {
  std::vector<float> a{5.0F, 5.0F};
  std::vector<float> b{5.0F, 5.0F};
  std::vector<ClientOutcome> outs;
  outs.push_back(make_outcome({2.0F, 4.0F}, {1, 1}, 2));
  outs.push_back(make_outcome({4.0F, 8.0F}, {1, 1}, 2));
  aggregate(a, outs, AggregationRule::kMaskedAverage);
  aggregate(b, outs, AggregationRule::kPerCoordinateNormalized);
  EXPECT_EQ(a, b);
}

TEST(Aggregate, MaskedAverageCountsZeros) {
  // Literal eq. 10: the dropped client contributes a zero, shrinking the row.
  std::vector<float> global{0.0F};
  std::vector<ClientOutcome> outs;
  outs.push_back(make_outcome({4.0F}, {1}, 1));
  outs.push_back(make_outcome({0.0F}, {0}, 1));
  aggregate(global, outs, AggregationRule::kMaskedAverage);
  EXPECT_FLOAT_EQ(global[0], 2.0F);
}

TEST(Aggregate, NormalizedAveragesOverTransmitters) {
  std::vector<float> global{0.0F};
  std::vector<ClientOutcome> outs;
  outs.push_back(make_outcome({4.0F}, {1}, 1));
  outs.push_back(make_outcome({0.0F}, {0}, 1));
  aggregate(global, outs, AggregationRule::kPerCoordinateNormalized);
  EXPECT_FLOAT_EQ(global[0], 4.0F);
}

TEST(Aggregate, NormalizedKeepsOldValueWhenNobodyTransmits) {
  std::vector<float> global{7.0F};
  std::vector<ClientOutcome> outs;
  outs.push_back(make_outcome({0.0F}, {0}, 1));
  aggregate(global, outs, AggregationRule::kPerCoordinateNormalized);
  EXPECT_FLOAT_EQ(global[0], 7.0F);
}

TEST(Aggregate, UpdateOutcomesAddToGlobal) {
  std::vector<float> global{10.0F, 10.0F};
  std::vector<ClientOutcome> outs;
  outs.push_back(make_outcome({1.0F, 0.0F}, {1, 0}, 1, true));
  outs.push_back(make_outcome({3.0F, 0.0F}, {1, 0}, 1, true));
  aggregate(global, outs, AggregationRule::kPerCoordinateNormalized);
  EXPECT_FLOAT_EQ(global[0], 12.0F);
  EXPECT_FLOAT_EQ(global[1], 10.0F);  // nobody updated coordinate 1
}

TEST(Aggregate, SampleWeightingMattersForUpdates) {
  std::vector<float> global{0.0F};
  std::vector<ClientOutcome> outs;
  outs.push_back(make_outcome({3.0F}, {1}, 9, true));
  outs.push_back(make_outcome({0.0F}, {1}, 1, true));
  aggregate(global, outs, AggregationRule::kPerCoordinateNormalized);
  EXPECT_FLOAT_EQ(global[0], 2.7F);
}

TEST(Aggregate, RejectsMixedOutcomeTypes) {
  std::vector<float> global{0.0F};
  std::vector<ClientOutcome> outs;
  outs.push_back(make_outcome({1.0F}, {1}, 1, false));
  outs.push_back(make_outcome({1.0F}, {1}, 1, true));
  EXPECT_THROW(aggregate(global, outs, AggregationRule::kMaskedAverage),
               fedbiad::CheckError);
}

TEST(Aggregate, RejectsEmptyAndMismatched) {
  std::vector<float> global{0.0F};
  std::vector<ClientOutcome> empty;
  EXPECT_THROW(aggregate(global, empty, AggregationRule::kMaskedAverage),
               fedbiad::CheckError);
  std::vector<ClientOutcome> bad;
  bad.push_back(make_outcome({1.0F, 2.0F}, {1, 1}, 1));
  EXPECT_THROW(aggregate(global, bad, AggregationRule::kMaskedAverage),
               fedbiad::CheckError);
}

// --- edge cases for the blocked streaming loop (PR 2's loop inversion) ---

TEST(Aggregate, SingleClientParamsReplaceGlobal) {
  for (const auto rule : {AggregationRule::kMaskedAverage,
                          AggregationRule::kPerCoordinateNormalized}) {
    std::vector<float> global{9.0F, 9.0F, 9.0F};
    std::vector<ClientOutcome> outs;
    outs.push_back(make_outcome({1.0F, 2.0F, 3.0F}, {1, 1, 1}, 5));
    aggregate(global, outs, rule);
    EXPECT_EQ(global, (std::vector<float>{1.0F, 2.0F, 3.0F}));
  }
}

TEST(Aggregate, SingleClientUpdateAddsItsDelta) {
  std::vector<float> global{1.0F, 1.0F};
  std::vector<ClientOutcome> outs;
  outs.push_back(make_outcome({0.5F, 0.0F}, {1, 0}, 3, true));
  aggregate(global, outs, AggregationRule::kPerCoordinateNormalized);
  EXPECT_FLOAT_EQ(global[0], 1.5F);
  EXPECT_FLOAT_EQ(global[1], 1.0F);
}

TEST(Aggregate, RejectsZeroWeightClient) {
  std::vector<float> global{0.0F};
  std::vector<ClientOutcome> outs;
  outs.push_back(make_outcome({1.0F}, {1}, 1));
  outs.push_back(make_outcome({2.0F}, {1}, 0));  // |D_k| = 0
  EXPECT_THROW(aggregate(global, outs, AggregationRule::kMaskedAverage),
               fedbiad::CheckError);
  EXPECT_THROW(
      aggregate(global, outs, AggregationRule::kPerCoordinateNormalized),
      fedbiad::CheckError);
}

TEST(Aggregate, RejectsRaggedParameterSizes) {
  std::vector<float> global{0.0F, 0.0F};
  // Client vector longer than the global.
  std::vector<ClientOutcome> longer;
  longer.push_back(make_outcome({1.0F, 2.0F, 3.0F}, {1, 1, 1}, 1));
  EXPECT_THROW(aggregate(global, longer, AggregationRule::kMaskedAverage),
               fedbiad::CheckError);
  // Shorter than the global.
  std::vector<ClientOutcome> shorter;
  shorter.push_back(make_outcome({1.0F}, {1}, 1));
  EXPECT_THROW(aggregate(global, shorter, AggregationRule::kMaskedAverage),
               fedbiad::CheckError);
  // values/present disagreeing with each other.
  std::vector<ClientOutcome> mask_ragged;
  mask_ragged.push_back(make_outcome({1.0F, 2.0F}, {1}, 1));
  EXPECT_THROW(
      aggregate(global, mask_ragged, AggregationRule::kPerCoordinateNormalized),
      fedbiad::CheckError);
  // One well-formed client must not mask a ragged co-participant.
  std::vector<ClientOutcome> mixed;
  mixed.push_back(make_outcome({1.0F, 2.0F}, {1, 1}, 1));
  mixed.push_back(make_outcome({1.0F}, {1}, 1));
  EXPECT_THROW(aggregate(global, mixed, AggregationRule::kMaskedAverage),
               fedbiad::CheckError);
}

// n larger than the 4096-coordinate streaming block: results must agree
// with a scalar per-coordinate reference across block boundaries.
TEST(Aggregate, MatchesScalarReferenceAcrossBlockBoundaries) {
  const std::size_t n = 3 * 4096 + 17;
  std::vector<float> global(n);
  for (std::size_t i = 0; i < n; ++i) {
    global[i] = static_cast<float>(i % 7) - 3.0F;
  }
  std::vector<float> reference = global;
  std::vector<ClientOutcome> outs;
  for (std::size_t k = 0; k < 3; ++k) {
    std::vector<float> values(n);
    std::vector<std::uint8_t> present(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = static_cast<float>((i + k) % 5) * 0.25F;
      present[i] = (i + k) % 3 != 0 ? 1 : 0;
    }
    outs.push_back(make_outcome(std::move(values), std::move(present), k + 1));
  }
  aggregate(global, outs, AggregationRule::kPerCoordinateNormalized);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    double weight = 0.0;
    for (const ClientOutcome& o : outs) {
      if (o.present[i] == 0) continue;
      acc += static_cast<double>(o.samples) * o.values[i];
      weight += static_cast<double>(o.samples);
    }
    const float expected =
        weight > 0.0 ? static_cast<float>(acc / weight) : reference[i];
    ASSERT_EQ(global[i], expected) << "coordinate " << i;
  }
}

TEST(ClientStateStore, CreatesOncePerClient) {
  ClientStateStore<int> store;
  int created = 0;
  auto& a = store.get_or_create(1, [&] {
    ++created;
    return 41;
  });
  a += 1;
  auto& b = store.get_or_create(1, [&] {
    ++created;
    return 0;
  });
  EXPECT_EQ(created, 1);
  EXPECT_EQ(b, 42);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find(2), nullptr);
  store.get_or_create(2, [] { return 7; });
  EXPECT_EQ(store.size(), 2u);
}

TEST(Link, TimingMatchesRates) {
  netsim::LinkModel link;  // 110.6 down / 14.0 up
  // 14 Mbit = 1.75 MB uploads in exactly one second.
  EXPECT_NEAR(link.upload_seconds(14'000'000 / 8), 1.0, 1e-9);
  EXPECT_NEAR(link.download_seconds(110'600'000 / 8), 1.0, 1e-9);
  // The uplink is ~7.9× slower — the paper's motivating asymmetry.
  EXPECT_NEAR(link.upload_seconds(1000) / link.download_seconds(1000),
              110.6 / 14.0, 1e-9);
}

TEST(Metrics, RoundsAndTimeToAccuracy) {
  SimulationResult result;
  for (std::size_t r = 1; r <= 5; ++r) {
    RoundRecord rec;
    rec.round = r;
    rec.top1 = 0.1 * static_cast<double>(r);
    rec.topk = 0.2 * static_cast<double>(r);
    rec.lttr_seconds = 1.0;
    rec.upload_seconds = 0.5;
    rec.download_seconds = 0.25;
    rec.aggregate_seconds = 0.25;
    rec.participants = 2;
    rec.uplink_bytes_total = 200;
    result.rounds.push_back(rec);
  }
  EXPECT_EQ(result.rounds_to_accuracy(0.3, false).value(), 3u);
  EXPECT_EQ(result.rounds_to_accuracy(0.6, true).value(), 3u);
  EXPECT_FALSE(result.rounds_to_accuracy(0.9, false).has_value());
  EXPECT_DOUBLE_EQ(result.time_to_accuracy(0.3, false).value(), 6.0);
  EXPECT_DOUBLE_EQ(result.best_accuracy(false), 0.5);
  EXPECT_DOUBLE_EQ(result.final_accuracy(true), 1.0);
  EXPECT_DOUBLE_EQ(result.mean_upload_bytes(), 100.0);
  EXPECT_DOUBLE_EQ(result.mean_lttr_seconds(), 1.0);
}

TEST(Metrics, CsvHasHeaderAndRows) {
  SimulationResult result;
  RoundRecord rec;
  rec.round = 1;
  result.rounds.push_back(rec);
  std::ostringstream os;
  result.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("round,train_loss"), std::string::npos);
  EXPECT_NE(csv.find('\n'), std::string::npos);
}

TEST(Tta, UploadSummaryAndFormatting) {
  SimulationResult result;
  RoundRecord rec;
  rec.participants = 2;
  rec.uplink_bytes_total = 1000;
  result.rounds.push_back(rec);
  const auto summary = netsim::summarize_upload(result, 2000);
  EXPECT_DOUBLE_EQ(summary.mean_bytes, 500.0);
  EXPECT_DOUBLE_EQ(summary.save_ratio, 4.0);
  EXPECT_EQ(netsim::format_bytes(531.0 * 1024), "531KB");
  EXPECT_EQ(netsim::format_bytes(29.8 * 1024 * 1024), "29.8MB");
  EXPECT_EQ(netsim::format_bytes(12.0), "12B");
  EXPECT_EQ(netsim::format_seconds(0.5), "500ms");
  EXPECT_EQ(netsim::format_seconds(12.34), "12.3s");
  EXPECT_EQ(netsim::format_seconds(180.0), "3.0min");
}

class SimulationFixture : public ::testing::Test {
 protected:
  SimulationConfig make_config() {
    SimulationConfig cfg;
    cfg.rounds = 3;
    cfg.selection_fraction = 0.5;
    cfg.train.local_iterations = 4;
    cfg.train.batch_size = 8;
    cfg.train.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};
    cfg.seed = 7;
    cfg.threads = 2;
    return cfg;
  }

  Simulation make_simulation(const SimulationConfig& cfg) {
    auto img_cfg = data::ImageSynthConfig::mnist_like(3);
    img_cfg.train_samples = 100;
    img_cfg.test_samples = 30;
    img_cfg.height = 10;
    img_cfg.width = 10;
    auto datasets = data::make_image_datasets(img_cfg);
    tensor::Rng prng(5);
    auto partition = data::partition_iid(datasets.train->size(), 4, prng);
    auto factory = [] {
      return std::make_unique<nn::MlpModel>(
          nn::MlpConfig{.input = 100, .hidden = 8, .classes = 10});
    };
    return Simulation(cfg, factory, datasets.train, datasets.test,
                      std::move(partition),
                      std::make_shared<baselines::FedAvgStrategy>());
  }
};

TEST_F(SimulationFixture, ProducesOneRecordPerRound) {
  auto sim = make_simulation(make_config());
  const auto result = sim.run();
  ASSERT_EQ(result.rounds.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(result.rounds[r].round, r + 1);
    EXPECT_EQ(result.rounds[r].participants, 2u);
    EXPECT_GT(result.rounds[r].uplink_bytes_total, 0u);
    EXPECT_GT(result.rounds[r].lttr_seconds, 0.0);
    EXPECT_GT(result.rounds[r].wall_seconds(), 0.0);
  }
  EXPECT_EQ(result.strategy, "FedAvg");
  EXPECT_FALSE(result.final_params.empty());
}

TEST_F(SimulationFixture, DeterministicAccuracyForSameSeed) {
  auto sim1 = make_simulation(make_config());
  auto sim2 = make_simulation(make_config());
  const auto r1 = sim1.run();
  const auto r2 = sim2.run();
  ASSERT_EQ(r1.rounds.size(), r2.rounds.size());
  for (std::size_t i = 0; i < r1.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.rounds[i].top1, r2.rounds[i].top1);
    EXPECT_DOUBLE_EQ(r1.rounds[i].test_loss, r2.rounds[i].test_loss);
    EXPECT_EQ(r1.rounds[i].uplink_bytes_total, r2.rounds[i].uplink_bytes_total);
  }
  for (std::size_t i = 0; i < r1.final_params.size(); ++i) {
    ASSERT_FLOAT_EQ(r1.final_params[i], r2.final_params[i]);
  }
}

TEST_F(SimulationFixture, EvalEverySkipsEvaluationButCarriesForward) {
  auto cfg = make_config();
  cfg.rounds = 4;
  cfg.eval_every = 2;
  auto sim = make_simulation(cfg);
  const auto result = sim.run();
  // Rounds 1 and 3 carry forward; rounds 2 and 4 evaluate.
  EXPECT_DOUBLE_EQ(result.rounds[2].top1, result.rounds[1].top1);
}

}  // namespace
}  // namespace fedbiad::fl
