// Tests for the paper's core machinery: dropping patterns (§III-C), the
// loss-trend controller (eq. 8), the weight score vector (eq. 9), and the
// FedBIAD client strategy (Algorithm 1).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "core/drop_pattern.hpp"
#include "core/fedbiad_strategy.hpp"
#include "core/loss_trend.hpp"
#include "core/weight_score.hpp"
#include "data/image_synth.hpp"
#include "nn/mlp_model.hpp"
#include "nn/lstm_lm_model.hpp"

namespace fedbiad::core {
namespace {

/// Runs one client and then performs the server-side decode step exactly as
/// the engines do on upload arrival, so tests can inspect the dense view.
template <typename Strat>
fl::ClientOutcome run_decoded(Strat& strat, fl::ClientContext& ctx) {
  auto out = strat.run_client(ctx);
  fl::decode_outcome(strat, ctx.model.store(), out);
  return out;
}

nn::ParameterStore make_store() {
  nn::ParameterStore store;
  store.add_group("fc1", nn::GroupKind::kDense, 8, 5, true);
  store.add_group("bias", nn::GroupKind::kDense, 2, 3, false);
  store.add_group("wx", nn::GroupKind::kRecurrentInput, 4, 5, true);
  store.finalize();
  return store;
}

TEST(DropPattern, AllKeptByDefault) {
  DropPattern p(10);
  EXPECT_EQ(p.kept_count(), 10u);
  EXPECT_EQ(p.dropped_count(), 0u);
}

TEST(DropPattern, SampleDropsExactPerGroupCounts) {
  auto store = make_store();
  tensor::Rng rng(3);
  const auto p = DropPattern::sample(store, 0.5, eligible_all(), rng);
  // fc1: 8 rows → 4 dropped; wx: 4 rows → 2 dropped. J = 12, kept = 6.
  EXPECT_EQ(p.rows(), 12u);
  EXPECT_EQ(p.kept_count(), 6u);
  std::size_t fc1_kept = 0;
  for (std::size_t r = 0; r < 8; ++r) {
    fc1_kept += p.kept(store.droppable_index(0, r)) ? 1 : 0;
  }
  EXPECT_EQ(fc1_kept, 4u);
}

TEST(DropPattern, EligibilityProtectsRecurrentRows) {
  auto store = make_store();
  tensor::Rng rng(5);
  const auto p = DropPattern::sample(store, 0.5, eligible_fc_conv(), rng);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_TRUE(p.kept(store.droppable_index(2, r)))
        << "recurrent row " << r << " must never be dropped by FC-only drop";
  }
  EXPECT_EQ(p.dropped_count(), 4u);  // only fc1's half
}

TEST(DropPattern, ZeroRateKeepsEverything) {
  auto store = make_store();
  tensor::Rng rng(7);
  const auto p = DropPattern::sample(store, 0.0, eligible_all(), rng);
  EXPECT_EQ(p.kept_count(), p.rows());
}

TEST(DropPattern, RejectsFullDropOfAGroup) {
  auto store = make_store();
  tensor::Rng rng(9);
  EXPECT_THROW(DropPattern::sample(store, 0.95, eligible_all(), rng),
               fedbiad::CheckError);
}

TEST(DropPattern, ApplyZeroesDroppedRowsOnly) {
  auto store = make_store();
  for (auto& v : store.params()) v = 1.0F;
  tensor::Rng rng(11);
  const auto p = DropPattern::sample(store, 0.5, eligible_all(), rng);
  p.apply_to_params(store);
  for (std::size_t j = 0; j < p.rows(); ++j) {
    const auto ref = store.droppable_row(j);
    for (const float v : store.row_params(ref.group, ref.row)) {
      if (p.kept(j)) {
        EXPECT_EQ(v, 1.0F);
      } else {
        EXPECT_EQ(v, 0.0F);
      }
    }
  }
  // Non-droppable group untouched.
  for (const float v : store.group_params(1)) EXPECT_EQ(v, 1.0F);
}

TEST(DropPattern, ApplyToGradsMirrorsParams) {
  auto store = make_store();
  for (auto& g : store.grads()) g = 2.0F;
  tensor::Rng rng(13);
  const auto p = DropPattern::sample(store, 0.25, eligible_all(), rng);
  p.apply_to_grads(store);
  std::size_t zeroed = 0;
  for (std::size_t j = 0; j < p.rows(); ++j) {
    const auto ref = store.droppable_row(j);
    if (!p.kept(j)) {
      for (const float g : store.row_grads(ref.group, ref.row)) {
        EXPECT_EQ(g, 0.0F);
      }
      ++zeroed;
    }
  }
  EXPECT_EQ(zeroed, p.dropped_count());
}

TEST(DropPattern, PresenceMarksDroppedCoordinates) {
  auto store = make_store();
  tensor::Rng rng(17);
  const auto p = DropPattern::sample(store, 0.5, eligible_all(), rng);
  std::vector<std::uint8_t> present(store.size(), 1);
  p.mark_presence(store, present);
  std::size_t absent = 0;
  for (const auto b : present) absent += b == 0 ? 1 : 0;
  EXPECT_EQ(absent, p.dropped_count() * 5);  // all rows are 5 wide
}

TEST(DropPattern, UploadBytesMatchesPaperAccounting) {
  auto store = make_store();
  tensor::Rng rng(19);
  const auto p = DropPattern::sample(store, 0.5, eligible_all(), rng);
  // kept droppable rows: 6 × 5 floats; non-droppable: 6 floats; mask: 12 bits
  // → 2 bytes.
  const std::uint64_t expected = (6 * 5 + 6) * 4 + 2;
  EXPECT_EQ(p.upload_bytes(store), expected);
  EXPECT_EQ(dense_model_bytes(store), store.size() * 4);
}

TEST(DropPattern, FullPatternUploadApproachesDense) {
  auto store = make_store();
  DropPattern p(store.droppable_rows());
  EXPECT_EQ(p.upload_bytes(store), dense_model_bytes(store) + 2);
}

class DropRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(DropRateSweep, KeptFractionTracksRate) {
  const double rate = GetParam();
  nn::ParameterStore store;
  store.add_group("w", nn::GroupKind::kDense, 200, 10, true);
  store.finalize();
  tensor::Rng rng(23);
  const auto p = DropPattern::sample(store, rate, eligible_all(), rng);
  const double kept_frac =
      static_cast<double>(p.kept_count()) / static_cast<double>(p.rows());
  EXPECT_NEAR(kept_frac, 1.0 - rate, 0.01);
  // Upload must track (1-p)·dense + mask bits.
  const double upload_frac =
      static_cast<double>(p.upload_bytes(store)) -
      static_cast<double>((p.rows() + 7) / 8);
  EXPECT_NEAR(upload_frac / static_cast<double>(dense_model_bytes(store)),
              1.0 - rate, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Rates, DropRateSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5, 0.7));

TEST(LossTrend, NeedsTwoWindows) {
  LossTrendController t(3);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(t.should_evaluate());
    t.record(1.0);
  }
  EXPECT_FALSE(t.should_evaluate());  // v = 5 is not a multiple of 3
  t.record(1.0);
  EXPECT_TRUE(t.should_evaluate());  // v = 6 = 2τ
}

TEST(LossTrend, GapSignReflectsTrend) {
  LossTrendController down(2);
  for (const double l : {4.0, 3.0, 2.0, 1.0}) down.record(l);
  ASSERT_TRUE(down.should_evaluate());
  EXPECT_LT(down.loss_gap(), 0.0);

  LossTrendController up(2);
  for (const double l : {1.0, 1.0, 3.0, 3.0}) up.record(l);
  ASSERT_TRUE(up.should_evaluate());
  EXPECT_GT(up.loss_gap(), 0.0);
}

TEST(LossTrend, GapMatchesEquationEight) {
  LossTrendController t(2);
  for (const double l : {1.0, 2.0, 3.0, 5.0}) t.record(l);
  // L̄ recent = (3+5)/2 = 4; L̄ previous = (1+2)/2 = 1.5; ΔL = 2.5.
  EXPECT_DOUBLE_EQ(t.loss_gap(), 2.5);
}

TEST(LossTrend, EvaluatesEveryTauIterations) {
  LossTrendController t(3);
  std::vector<std::size_t> eval_points;
  for (std::size_t v = 1; v <= 12; ++v) {
    t.record(1.0);
    if (t.should_evaluate()) eval_points.push_back(v);
  }
  EXPECT_EQ(eval_points, (std::vector<std::size_t>{6, 9, 12}));
}

TEST(LossTrend, MeanAndLast) {
  LossTrendController t(2);
  t.record(2.0);
  t.record(4.0);
  EXPECT_DOUBLE_EQ(t.mean_loss(), 3.0);
  EXPECT_DOUBLE_EQ(t.last_loss(), 4.0);
}

TEST(LossTrend, RejectsZeroTau) {
  EXPECT_THROW(LossTrendController(0), fedbiad::CheckError);
}

TEST(WeightScore, UpdateFollowsEquationNine) {
  WeightScoreVector scores(4);
  DropPattern held(4);
  held.set(2, false);  // rows 0,1,3 held
  DropPattern next(4);
  next.set(0, false);  // rows 1,2,3 kept next

  // Case ΔL ≤ 0: every held row gains 1.
  scores.update(held, true, held);
  EXPECT_EQ(scores.score(0), 1.0);
  EXPECT_EQ(scores.score(1), 1.0);
  EXPECT_EQ(scores.score(2), 0.0);  // not held → unchanged
  EXPECT_EQ(scores.score(3), 1.0);

  // Case ΔL > 0: held rows gain e_j = [kept in next pattern].
  scores.update(held, false, next);
  EXPECT_EQ(scores.score(0), 1.0);  // held but dropped next → +0
  EXPECT_EQ(scores.score(1), 2.0);  // held and kept next → +1
  EXPECT_EQ(scores.score(2), 0.0);
  EXPECT_EQ(scores.score(3), 2.0);
}

TEST(WeightScore, QuantileInterpolates) {
  WeightScoreVector s(std::vector<double>{0.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 1.5);
}

TEST(WeightScore, MakePatternKeepsTopScoredRows) {
  nn::ParameterStore store;
  store.add_group("w", nn::GroupKind::kDense, 6, 3, true);
  store.finalize();
  WeightScoreVector s(std::vector<double>{5.0, 1.0, 4.0, 0.0, 3.0, 2.0});
  tensor::Rng rng(29);
  const auto p = s.make_pattern(store, 0.5, eligible_all(), rng);
  // Drop 3 lowest scores: rows 1, 3, 5.
  EXPECT_TRUE(p.kept(0));
  EXPECT_FALSE(p.kept(1));
  EXPECT_TRUE(p.kept(2));
  EXPECT_FALSE(p.kept(3));
  EXPECT_TRUE(p.kept(4));
  EXPECT_FALSE(p.kept(5));
}

TEST(WeightScore, MakePatternRespectsEligibility) {
  auto store = make_store();
  WeightScoreVector s(store.droppable_rows());
  tensor::Rng rng(31);
  const auto p = s.make_pattern(store, 0.5, eligible_fc_conv(), rng);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_TRUE(p.kept(store.droppable_index(2, r)));
  }
}

TEST(WeightScore, TieBreaksAreRandomNotIndexOrdered) {
  nn::ParameterStore store;
  store.add_group("w", nn::GroupKind::kDense, 100, 2, true);
  store.finalize();
  WeightScoreVector s(100);  // all-zero scores: pure tie
  tensor::Rng r1(1), r2(2);
  const auto p1 = s.make_pattern(store, 0.5, eligible_all(), r1);
  const auto p2 = s.make_pattern(store, 0.5, eligible_all(), r2);
  EXPECT_NE(p1.bits(), p2.bits());
}

TEST(StructureOf, DerivesPlausibleDimensions) {
  nn::LstmLmModel model({.vocab = 50, .embed = 8, .hidden = 16, .layers = 2});
  const auto s = structure_of(model.store(), 0.5);
  EXPECT_GT(s.sparsity, 0u);
  EXPECT_LT(s.sparsity, model.store().size());
  EXPECT_GE(s.width, 50u);  // widest group: the vocabulary rows
  EXPECT_GE(s.layers, 3u);
  EXPECT_GE(s.weight_bound, 2.0);
}

TEST(FedBiadStrategy, ValidatesConfig) {
  EXPECT_THROW(FedBiadStrategy({.dropout_rate = 1.0}), fedbiad::CheckError);
  EXPECT_THROW(FedBiadStrategy({.dropout_rate = 0.5, .tau = 0}),
               fedbiad::CheckError);
}

struct ClientHarness {
  explicit ClientHarness(std::uint64_t seed = 99) {
    auto cfg = data::ImageSynthConfig::mnist_like(seed);
    cfg.train_samples = 120;
    cfg.test_samples = 10;
    cfg.height = 12;
    cfg.width = 12;
    datasets = data::make_image_datasets(cfg);
    model = std::make_unique<nn::MlpModel>(
        nn::MlpConfig{.input = 144, .hidden = 16, .classes = 10});
    tensor::Rng init(seed);
    model->init_params(init);
    shard.resize(datasets.train->size());
    for (std::size_t i = 0; i < shard.size(); ++i) shard[i] = i;
    settings.local_iterations = 12;
    settings.batch_size = 8;
    settings.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};
    global.assign(model->store().params().begin(),
                  model->store().params().end());
  }

  fl::ClientContext context(std::size_t client, std::size_t round) {
    return fl::ClientContext{.client_id = client,
                             .round = round,
                             .model = *model,
                             .global_params = global,
                             .dataset = *datasets.train,
                             .shard = shard,
                             .settings = settings,
                             .rng = tensor::Rng(round * 1000 + client)};
  }

  data::ImageDatasets datasets;
  std::unique_ptr<nn::Model> model;
  std::vector<std::size_t> shard;
  fl::TrainSettings settings;
  std::vector<float> global;
};

TEST(FedBiadStrategy, UploadIsRoughlyOneMinusPOfDense) {
  ClientHarness h;
  FedBiadStrategy strat({.dropout_rate = 0.5, .tau = 3, .stage_boundary = 5,
                         .sample_posterior = false});
  auto ctx = h.context(0, 1);
  const auto out = run_decoded(strat, ctx);
  const double dense = static_cast<double>(
      dense_model_bytes(h.model->store()));
  EXPECT_NEAR(static_cast<double>(out.uplink_bytes) / dense, 0.5, 0.05);
  EXPECT_FALSE(out.is_update);
  EXPECT_EQ(out.samples, h.shard.size());
}

TEST(FedBiadStrategy, PresenceMatchesDroppedRows) {
  ClientHarness h;
  FedBiadStrategy strat({.dropout_rate = 0.5, .tau = 3, .stage_boundary = 5,
                         .sample_posterior = false});
  auto ctx = h.context(1, 1);
  const auto out = run_decoded(strat, ctx);
  std::size_t absent = 0;
  for (const auto p : out.present) absent += p == 0 ? 1 : 0;
  EXPECT_GT(absent, 0u);
  // Absent coordinates carry no information; their values are never read by
  // the per-coordinate aggregator, but presence must cover whole rows.
  const auto& store = h.model->store();
  for (std::size_t j = 0; j < store.droppable_rows(); ++j) {
    const auto ref = store.droppable_row(j);
    const auto& grp = store.group(ref.group);
    const std::size_t begin = grp.offset + ref.row * grp.row_len;
    const auto first = out.present[begin];
    for (std::size_t i = begin; i < begin + grp.row_len; ++i) {
      EXPECT_EQ(out.present[i], first) << "row " << j << " partially present";
    }
  }
}

TEST(FedBiadStrategy, AccumulatesClientScores) {
  ClientHarness h;
  FedBiadStrategy strat({.dropout_rate = 0.5, .tau = 2, .stage_boundary = 10,
                         .sample_posterior = false});
  EXPECT_EQ(strat.client_scores(7), nullptr);
  auto ctx = h.context(7, 1);
  strat.run_client(ctx);
  const auto* scores = strat.client_scores(7);
  ASSERT_NE(scores, nullptr);
  double total = 0.0;
  for (const double s : scores->scores()) total += s;
  EXPECT_GT(total, 0.0);  // at least one ΔL evaluation happened
}

TEST(FedBiadStrategy, StageTwoUsesScorePattern) {
  ClientHarness h;
  FedBiadStrategy strat({.dropout_rate = 0.5, .tau = 2, .stage_boundary = 2,
                         .sample_posterior = false});
  // Two stage-one rounds accumulate experience…
  for (std::size_t r = 1; r <= 2; ++r) {
    auto ctx = h.context(3, r);
    strat.run_client(ctx);
  }
  // …then stage two must keep exactly the top-half rows by score, i.e. two
  // consecutive stage-two rounds with identical scores produce identical
  // presence masks (no random resampling anymore).
  auto ctx3 = h.context(3, 3);
  const auto out3 = run_decoded(strat, ctx3);
  auto cfg = strat.config();
  ASSERT_GT(ctx3.round, cfg.stage_boundary);
  auto ctx4 = h.context(3, 4);
  const auto out4 = run_decoded(strat, ctx4);
  // Stage-two score updates can perturb ranking only via held rows, whose
  // scores all rise equally, so the chosen pattern is stable.
  EXPECT_EQ(out3.present, out4.present);
}

TEST(FedBiadStrategy, PosteriorVarianceFollowsTheory) {
  ClientHarness h;
  FedBiadStrategy strat({.dropout_rate = 0.5, .sample_posterior = true,
                         .posterior_variance = -1.0});
  const double v1 = strat.effective_posterior_variance(h.model->store(), 1,
                                                       100, 20);
  const double v2 = strat.effective_posterior_variance(h.model->store(), 10,
                                                       100, 20);
  EXPECT_GT(v1, 0.0);
  EXPECT_GT(v1, v2);  // variance shrinks as data accumulates (eq. 13)
  FedBiadStrategy fixed({.dropout_rate = 0.5, .sample_posterior = true,
                         .posterior_variance = 0.123});
  EXPECT_DOUBLE_EQ(
      fixed.effective_posterior_variance(h.model->store(), 1, 100, 20),
      0.123);
  FedBiadStrategy off({.dropout_rate = 0.5, .sample_posterior = false});
  EXPECT_DOUBLE_EQ(
      off.effective_posterior_variance(h.model->store(), 1, 100, 20), 0.0);
}

TEST(FedBiadStrategy, TrainingLossDecreasesLocally) {
  ClientHarness h;
  h.settings.local_iterations = 40;
  FedBiadStrategy strat({.dropout_rate = 0.3, .tau = 3, .stage_boundary = 50,
                         .sample_posterior = false});
  auto ctx = h.context(0, 1);
  const auto out = run_decoded(strat, ctx);
  EXPECT_LT(out.last_loss, out.mean_loss * 1.25);
}

}  // namespace
}  // namespace fedbiad::core
