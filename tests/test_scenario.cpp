// Tests for the declarative scenario subsystem: the JSON reader, strict
// config parsing, the availability/churn/deadline models, the scheduler's
// cancellation surface, and the engine integration — hand-computed partial-
// cohort references for all three aggregation modes, wire-accounting
// regressions under cutoff, thread-count determinism under every knob, and
// fuzzed invariant checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/fedavg.hpp"
#include "common/check.hpp"
#include "data/image_synth.hpp"
#include "data/partition.hpp"
#include "fl/aggregate.hpp"
#include "fl/async_simulation.hpp"
#include "fl/engine_hooks.hpp"
#include "fl/scheduler.hpp"
#include "fl/strategy.hpp"
#include "netsim/client_profile.hpp"
#include "nn/mlp_model.hpp"
#include "scenario/config.hpp"
#include "scenario/json.hpp"
#include "scenario/model.hpp"
#include "tensor/rng.hpp"
#include "wire/accounting.hpp"

namespace fedbiad {
namespace {

// --- EventScheduler cancellation surface ----------------------------------

TEST(SchedulerCancel, CancelPreventsExecution) {
  fl::EventScheduler sched;
  std::vector<int> order;
  const auto a = sched.schedule_at(1.0, [&] { order.push_back(1); });
  sched.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_TRUE(sched.cancel(a));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(SchedulerCancel, CancelledEventNeverAdvancesClock) {
  fl::EventScheduler sched;
  const auto late = sched.schedule_at(9.0, [] { FAIL() << "cancelled ran"; });
  sched.schedule_at(2.0, [] {});
  EXPECT_TRUE(sched.cancel(late));
  sched.run();
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
  EXPECT_TRUE(sched.empty());
}

TEST(SchedulerCancel, CancelReturnsFalseForUnknownRunOrRepeat) {
  fl::EventScheduler sched;
  EXPECT_FALSE(sched.cancel(fl::EventScheduler::kNoEvent));
  EXPECT_FALSE(sched.cancel(12345));  // never issued
  const auto id = sched.schedule_at(1.0, [] {});
  EXPECT_TRUE(sched.run_next());
  EXPECT_FALSE(sched.cancel(id));  // already ran
  const auto id2 = sched.schedule_at(2.0, [] {});
  EXPECT_TRUE(sched.cancel(id2));
  EXPECT_FALSE(sched.cancel(id2));  // already cancelled
}

TEST(SchedulerCancel, PendingExcludesCancelled) {
  fl::EventScheduler sched;
  const auto a = sched.schedule_at(1.0, [] {});
  sched.schedule_at(2.0, [] {});
  sched.schedule_at(3.0, [] {});
  EXPECT_EQ(sched.pending(), 3u);
  EXPECT_TRUE(sched.cancel(a));
  EXPECT_EQ(sched.pending(), 2u);
  EXPECT_FALSE(sched.empty());
  sched.run();
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_TRUE(sched.empty());
}

// A storm of events at one timestamp (the simultaneous-arrival worst case
// of the engine) runs in insertion order with interleaved cancels honored.
TEST(SchedulerCancel, SimultaneousTimestampEventStorm) {
  fl::EventScheduler sched;
  std::vector<int> order;
  std::vector<fl::EventScheduler::EventId> ids;
  sched.schedule_at(0.5, [&] { order.push_back(-1); });
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sched.schedule_at(1.0, [&, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 1000; i += 3) EXPECT_TRUE(sched.cancel(ids[i]));
  sched.run();
  EXPECT_DOUBLE_EQ(sched.now(), 1.0);
  std::vector<int> expect = {-1};
  for (int i = 0; i < 1000; ++i) {
    if (i % 3 != 0) expect.push_back(i);
  }
  EXPECT_EQ(order, expect);
}

// --- JSON reader ----------------------------------------------------------

TEST(ScenarioJson, ParsesNestedDocument) {
  const auto v = scenario::json::Value::parse(
      R"({"a": 1.5, "b": [true, null, "x"], "c": {"d": -2e3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.5);
  const auto& arr = v.find("b")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_EQ(arr[2].as_string(), "x");
  EXPECT_DOUBLE_EQ(v.find("c")->find("d")->as_number(), -2000.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ScenarioJson, ObjectKeysKeepFileOrder) {
  const auto v = scenario::json::Value::parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(ScenarioJson, RejectsTrailingContent) {
  EXPECT_THROW(scenario::json::Value::parse("{} trailing"), CheckError);
  EXPECT_THROW(scenario::json::Value::parse("1 2"), CheckError);
}

TEST(ScenarioJson, RejectsDuplicateKeys) {
  EXPECT_THROW(scenario::json::Value::parse(R"({"a": 1, "a": 2})"),
               CheckError);
}

TEST(ScenarioJson, RejectsMalformedInput) {
  EXPECT_THROW(scenario::json::Value::parse(""), CheckError);
  EXPECT_THROW(scenario::json::Value::parse("{"), CheckError);
  EXPECT_THROW(scenario::json::Value::parse("[1,]"), CheckError);
  EXPECT_THROW(scenario::json::Value::parse("tru"), CheckError);
  EXPECT_THROW(scenario::json::Value::parse("\"unterminated"), CheckError);
  EXPECT_THROW(scenario::json::Value::parse("{\"a\": 1.}"), CheckError);
}

TEST(ScenarioJson, ParsesStringEscapes) {
  const auto v = scenario::json::Value::parse(R"(["a\"b", "\n\t\\", "A"])");
  const auto& arr = v.as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].as_string(), "a\"b");
  EXPECT_EQ(arr[1].as_string(), "\n\t\\");
  EXPECT_EQ(arr[2].as_string(), "A");
}

// --- Config parsing and validation ----------------------------------------

scenario::Config full_config() {
  scenario::Config cfg;
  cfg.name = "full";
  cfg.seed = 1234;
  cfg.over_selection = 1.5;
  cfg.deadline_seconds = 40.0;
  cfg.availability = scenario::AvailabilityConfig{
      .period_seconds = 240.0,
      .window_fraction = 0.5,
      .on_probability = 0.9,
      .correlation = 0.6,
  };
  cfg.churn = scenario::ChurnConfig{.failure_rate = 0.2};
  return cfg;
}

TEST(ScenarioConfig, RoundTripsFullConfig) {
  const scenario::Config cfg = full_config();
  const scenario::Config back = scenario::Config::from_json(cfg.to_json());
  EXPECT_EQ(back, cfg);
  EXPECT_TRUE(cfg.active());
}

TEST(ScenarioConfig, RoundTripsMinimalConfig) {
  const scenario::Config cfg;  // ideal scenario, all defaults
  const scenario::Config back = scenario::Config::from_json(cfg.to_json());
  EXPECT_EQ(back, cfg);
  EXPECT_FALSE(cfg.active());
  EXPECT_EQ(scenario::Config::from_json("{}"), cfg);
}

TEST(ScenarioConfig, ActiveReflectsEveryKnob) {
  scenario::Config cfg;
  EXPECT_FALSE(cfg.active());
  cfg.over_selection = 1.5;
  EXPECT_TRUE(cfg.active());
  cfg = {};
  cfg.deadline_seconds = 1.0;
  EXPECT_TRUE(cfg.active());
  cfg = {};
  cfg.availability = scenario::AvailabilityConfig{};
  EXPECT_TRUE(cfg.active());
  cfg = {};
  cfg.churn = scenario::ChurnConfig{};
  EXPECT_TRUE(cfg.active());
}

TEST(ScenarioConfig, RejectsUnknownTopLevelKey) {
  EXPECT_THROW(scenario::Config::from_json(R"({"deadline": 1.0})"),
               CheckError);
}

TEST(ScenarioConfig, RejectsUnknownSectionKeys) {
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"availability": {"period": 10.0}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(R"({"churn": {"rate": 0.5}})"),
               CheckError);
}

TEST(ScenarioConfig, RejectsNonObjectRootAndSections) {
  EXPECT_THROW(scenario::Config::from_json("[]"), CheckError);
  EXPECT_THROW(scenario::Config::from_json("42"), CheckError);
  EXPECT_THROW(scenario::Config::from_json(R"({"availability": 3})"),
               CheckError);
}

TEST(ScenarioConfig, RejectsFailureRateOutOfRange) {
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"churn": {"failure_rate": 0.96}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"churn": {"failure_rate": -0.1}})"),
               CheckError);
  // The cap itself is fine.
  EXPECT_EQ(scenario::Config::from_json(R"({"churn": {"failure_rate": 0.95}})")
                .churn->failure_rate,
            0.95);
}

TEST(ScenarioConfig, RejectsZeroWidthWindow) {
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"availability": {"window_fraction": 0.0}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"availability": {"window_fraction": 1.5}})"),
               CheckError);
}

TEST(ScenarioConfig, RejectsBadAvailabilityRanges) {
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"availability": {"period_seconds": 0.0}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"availability": {"on_probability": 0.0}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"availability": {"correlation": 1.0}})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(
                   R"({"availability": {"correlation": -0.1}})"),
               CheckError);
}

TEST(ScenarioConfig, RejectsBadOverSelectionAndDeadline) {
  EXPECT_THROW(scenario::Config::from_json(R"({"over_selection": 0.9})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(R"({"over_selection": 8.5})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(R"({"deadline_seconds": -1.0})"),
               CheckError);
}

TEST(ScenarioConfig, RejectsBadSeedAndName) {
  EXPECT_THROW(scenario::Config::from_json(R"({"seed": 1.5})"), CheckError);
  EXPECT_THROW(scenario::Config::from_json(R"({"seed": -3})"), CheckError);
  EXPECT_THROW(scenario::Config::from_json(R"({"seed": "7"})"), CheckError);
  EXPECT_THROW(scenario::Config::from_json(R"({"name": "has space"})"),
               CheckError);
  EXPECT_THROW(scenario::Config::from_json(R"({"name": ""})"), CheckError);
  EXPECT_THROW(scenario::Config::from_json(R"({"name": 7})"), CheckError);
}

TEST(ScenarioConfig, ValidateCatchesMutationsAfterParse) {
  scenario::Config cfg = full_config();
  cfg.validate();
  cfg.over_selection = 100.0;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(ScenarioConfig, LoadRejectsMissingFile) {
  EXPECT_THROW(scenario::Config::load("/nonexistent/scenario.json"),
               CheckError);
}

// Every checked-in corpus file parses, matches its filename, and survives a
// canonical-emission round trip.
TEST(ScenarioConfig, CorpusFilesParseAndRoundTrip) {
  const std::string dir = FEDBIAD_SCENARIO_DIR;
  const std::vector<std::string> names = {
      "ideal",          "churn_moderate", "churn_heavy", "deadline_tight",
      "deadline_bench", "diurnal",        "flash_crowd", "faulty"};
  for (const std::string& name : names) {
    const scenario::Config cfg =
        scenario::Config::load(dir + "/" + name + ".json");
    EXPECT_EQ(cfg.name, name);
    EXPECT_EQ(scenario::Config::from_json(cfg.to_json()), cfg) << name;
    EXPECT_EQ(cfg.active(), name != "ideal") << name;
  }
}

// --- AvailabilityModel ----------------------------------------------------

TEST(ScenarioAvailability, AlwaysOnWithoutConfig) {
  scenario::AvailabilityModel m(std::nullopt, 1, 4);
  for (const double t : {0.0, 0.5, 123.0, 1e6}) {
    EXPECT_TRUE(m.available(0, t));
    EXPECT_EQ(m.next_available_time(2, t), t);
  }
  EXPECT_TRUE(m.period_on(3, 10'000));
  EXPECT_EQ(m.phase_seconds(1), 0.0);
}

TEST(ScenarioAvailability, WindowGatesWithinPeriod) {
  const scenario::AvailabilityConfig cfg{.period_seconds = 10.0,
                                         .window_fraction = 0.3,
                                         .on_probability = 1.0,
                                         .correlation = 0.0};
  scenario::AvailabilityModel m(cfg, 21, 20);
  // Find a client whose window does not wrap the period boundary.
  std::size_t k = 20;
  for (std::size_t c = 0; c < 20; ++c) {
    if (m.phase_seconds(c) + 3.0 < 9.9) {
      k = c;
      break;
    }
  }
  ASSERT_LT(k, 20u) << "no non-wrapping phase among 20 clients";
  const double phase = m.phase_seconds(k);
  EXPECT_TRUE(m.available(k, phase));          // start is inclusive
  EXPECT_TRUE(m.available(k, phase + 1.5));    // inside
  EXPECT_FALSE(m.available(k, phase + 3.0));   // end is exclusive
  EXPECT_FALSE(m.available(k, phase + 5.0));   // past the window
  if (phase > 0.1) EXPECT_FALSE(m.available(k, phase - 0.05));
  // Periodic: same offsets one period later (on_probability 1 keeps every
  // period on).
  EXPECT_TRUE(m.available(k, 10.0 + phase + 1.5));
  EXPECT_FALSE(m.available(k, 10.0 + phase + 3.0));
  // From just past the window, the next on-time is the next period's start.
  EXPECT_EQ(m.next_available_time(k, phase + 3.0), 10.0 + phase);
}

TEST(ScenarioAvailability, WrapAroundWindowSpillsIntoNextPeriod) {
  const scenario::AvailabilityConfig cfg{.period_seconds = 10.0,
                                         .window_fraction = 0.6,
                                         .on_probability = 1.0,
                                         .correlation = 0.0};
  scenario::AvailabilityModel m(cfg, 33, 20);
  std::size_t k = 20;
  for (std::size_t c = 0; c < 20; ++c) {
    if (m.phase_seconds(c) > 4.5) {  // phase + 6 wraps past 10
      k = c;
      break;
    }
  }
  ASSERT_LT(k, 20u) << "no wrapping phase among 20 clients";
  const double phase = m.phase_seconds(k);
  // The window is [phase, 10) ∪ [0, phase - 4): on at the period start…
  EXPECT_TRUE(m.available(k, 0.0));
  EXPECT_TRUE(m.available(k, phase));
  EXPECT_TRUE(m.available(k, 9.99));
  // …off in the gap between the spill-over and the window start…
  const double gap_mid = phase - 2.0;
  EXPECT_FALSE(m.available(k, gap_mid));
  // …and the next on-time from inside the gap is exactly the window start.
  EXPECT_EQ(m.next_available_time(k, gap_mid), phase);
}

// Property: next_available_time is consistent with available() — it never
// moves backwards, lands on an available instant, is the identity on
// available instants, and nothing strictly between t and the answer is on.
TEST(ScenarioAvailability, NextAvailableTimeConsistency) {
  const scenario::AvailabilityConfig cfg{.period_seconds = 1.0,
                                         .window_fraction = 0.5,
                                         .on_probability = 0.7,
                                         .correlation = 0.3};
  scenario::AvailabilityModel m(cfg, 17, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    for (double t = 0.0; t < 8.0; t += 0.037) {
      if (m.available(c, t)) {
        EXPECT_EQ(m.next_available_time(c, t), t);
        continue;
      }
      const double na = m.next_available_time(c, t);
      ASSERT_GT(na, t);
      EXPECT_TRUE(m.available(c, na)) << "client " << c << " t " << t;
      for (int j = 1; j <= 4; ++j) {
        const double mid = t + (na - t) * j / 5.0;
        EXPECT_FALSE(m.available(c, mid))
            << "client " << c << " skipped an on-instant at " << mid;
      }
    }
  }
}

TEST(ScenarioAvailability, MarginalMatchesOnProbability) {
  const scenario::AvailabilityConfig cfg{.period_seconds = 1.0,
                                         .window_fraction = 1.0,
                                         .on_probability = 0.6,
                                         .correlation = 0.0};
  scenario::AvailabilityModel m(cfg, 5, 2);
  std::size_t on = 0;
  const std::size_t periods = 4000;
  for (std::size_t p = 0; p < periods; ++p) on += m.period_on(0, p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(on) / periods, 0.6, 0.04);
}

// Correlation makes presence sticky: P(on | previous on) ≈ ρ + (1-ρ)·p,
// well above the uncorrelated marginal.
TEST(ScenarioAvailability, CorrelationCreatesPersistentRuns) {
  const scenario::AvailabilityConfig cfg{.period_seconds = 1.0,
                                         .window_fraction = 1.0,
                                         .on_probability = 0.6,
                                         .correlation = 0.7};
  scenario::AvailabilityModel m(cfg, 5, 2);
  std::size_t on_on = 0, on = 0;
  const std::size_t periods = 6000;
  bool prev = m.period_on(0, 0);
  for (std::size_t p = 1; p < periods; ++p) {
    const bool cur = m.period_on(0, p);
    if (prev) {
      ++on;
      on_on += cur ? 1 : 0;
    }
    prev = cur;
  }
  ASSERT_GT(on, 1000u);
  EXPECT_NEAR(static_cast<double>(on_on) / static_cast<double>(on),
              0.7 + 0.3 * 0.6, 0.05);
}

// The per-client chain is cached sequentially: random-access query orders
// and distinct model instances agree state for state.
TEST(ScenarioAvailability, ChainIsQueryOrderIndependent) {
  const scenario::AvailabilityConfig cfg{.period_seconds = 2.0,
                                         .window_fraction = 0.5,
                                         .on_probability = 0.9,
                                         .correlation = 0.5};
  scenario::AvailabilityModel a(cfg, 75, 6);
  scenario::AvailabilityModel b(cfg, 75, 6);
  // a queries far-first, b near-first.
  for (std::size_t c = 0; c < 6; ++c) {
    const bool far_a = a.period_on(c, 500);
    const bool near_a = a.period_on(c, 3);
    const bool near_b = b.period_on(c, 3);
    const bool far_b = b.period_on(c, 500);
    EXPECT_EQ(far_a, far_b);
    EXPECT_EQ(near_a, near_b);
    EXPECT_EQ(a.phase_seconds(c), b.phase_seconds(c));
  }
  for (double t = 0.0; t < 20.0; t += 0.41) {
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_EQ(a.available(c, t), b.available(c, t));
    }
  }
}

// --- ChurnInjector --------------------------------------------------------

TEST(ScenarioChurn, DeterministicPerDispatchDraws) {
  const scenario::ChurnConfig cfg{.failure_rate = 0.3};
  const scenario::ChurnInjector a(cfg, 72);
  const scenario::ChurnInjector b(cfg, 72);
  const scenario::ChurnInjector other(cfg, 73);
  bool any_diff = false;
  for (std::size_t c = 0; c < 6; ++c) {
    for (std::size_t s = 0; s < 50; ++s) {
      const auto da = a.decide(c, s);
      const auto db = b.decide(c, s);
      EXPECT_EQ(da.fails, db.fails);
      EXPECT_EQ(da.fraction, db.fraction);
      any_diff |= da.fails != other.decide(c, s).fails;
    }
  }
  EXPECT_TRUE(any_diff) << "different seeds should draw differently";
}

TEST(ScenarioChurn, ZeroRateNeverFails) {
  const scenario::ChurnInjector off(std::nullopt, 9);
  const scenario::ChurnInjector zero(scenario::ChurnConfig{.failure_rate = 0.0},
                                     9);
  for (std::size_t s = 0; s < 200; ++s) {
    EXPECT_FALSE(off.decide(s % 7, s).fails);
    EXPECT_FALSE(zero.decide(s % 7, s).fails);
  }
}

TEST(ScenarioChurn, MatchesConfiguredRateStatistically) {
  const scenario::ChurnInjector inj(scenario::ChurnConfig{.failure_rate = 0.3},
                                    11);
  std::size_t fails = 0;
  const std::size_t draws = 5000;
  for (std::size_t s = 0; s < draws; ++s) {
    const auto d = inj.decide(s % 13, s);
    fails += d.fails ? 1 : 0;
    EXPECT_GE(d.fraction, 0.0);
    EXPECT_LT(d.fraction, 1.0);
  }
  EXPECT_NEAR(static_cast<double>(fails) / draws, 0.3, 0.03);
}

// --- Engine integration fixtures ------------------------------------------

constexpr std::size_t kClients = 6;

struct Fixture {
  fl::SimulationConfig sim;
  data::DatasetPtr train;
  data::DatasetPtr test;
  data::Partition partition;
  nn::ModelFactory factory;
};

// Mirrors tests/test_async.cpp's harness: 6 clients, 3 in flight, a tiny
// 10×10 MLP — jobs take ~0.03–0.8 virtual seconds under the stressed fleet.
Fixture make_fixture(std::size_t threads, std::size_t rounds = 4) {
  Fixture fx;
  fx.sim.rounds = rounds;
  fx.sim.selection_fraction = 0.5;
  fx.sim.train.local_iterations = 3;
  fx.sim.train.batch_size = 8;
  fx.sim.train.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};
  fx.sim.seed = 9;
  fx.sim.threads = threads;
  auto img_cfg = data::ImageSynthConfig::mnist_like(3);
  img_cfg.train_samples = 96;
  img_cfg.test_samples = 30;
  img_cfg.height = 10;
  img_cfg.width = 10;
  const auto datasets = data::make_image_datasets(img_cfg);
  fx.train = datasets.train;
  fx.test = datasets.test;
  tensor::Rng prng(5);
  fx.partition = data::partition_iid(datasets.train->size(), kClients, prng);
  fx.factory = [] {
    return std::make_unique<nn::MlpModel>(
        nn::MlpConfig{.input = 100, .hidden = 8, .classes = 10});
  };
  return fx;
}

netsim::HeterogeneityConfig stressed_fleet() {
  netsim::HeterogeneityConfig h;
  h.compute_spread = 6.0;
  h.bandwidth_spread = 3.0;
  h.straggler_fraction = 0.3;
  h.straggler_multiplier = 4.0;
  return h;
}

fl::SimulationResult run_hooked(std::shared_ptr<fl::EngineHooks> hooks,
                                const std::string& name,
                                fl::AggregationMode mode, std::size_t threads,
                                const netsim::HeterogeneityConfig& fleet,
                                std::size_t rounds = 4,
                                std::size_t buffer_k = 2) {
  Fixture fx = make_fixture(threads, rounds);
  fl::AsyncSimulationConfig cfg;
  cfg.base = fx.sim;
  cfg.mode = mode;
  cfg.buffer_size = buffer_k;
  cfg.heterogeneity = fleet;
  cfg.hooks = std::move(hooks);
  cfg.scenario_name = name;
  fl::AsyncSimulation sim(cfg, fx.factory, fx.train, fx.test, fx.partition,
                          std::make_shared<baselines::FedAvgStrategy>());
  return sim.run();
}

fl::SimulationResult run_scenario(const scenario::Config& cfg,
                                  fl::AggregationMode mode,
                                  std::size_t threads,
                                  const netsim::HeterogeneityConfig& fleet,
                                  std::size_t rounds = 4,
                                  std::size_t buffer_k = 2) {
  return run_hooked(scenario::make_engine_hooks(cfg, kClients), cfg.name, mode,
                    threads, fleet, rounds, buffer_k);
}

fl::SimulationResult run_plain(fl::AggregationMode mode, std::size_t threads,
                               const netsim::HeterogeneityConfig& fleet,
                               std::size_t rounds = 4,
                               std::size_t buffer_k = 2) {
  return run_hooked(nullptr, "", mode, threads, fleet, rounds, buffer_k);
}

void expect_identical(const fl::SimulationResult& a,
                      const fl::SimulationResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].participants, b.rounds[i].participants);
    EXPECT_EQ(a.rounds[i].uplink_bytes_total, b.rounds[i].uplink_bytes_total);
    EXPECT_EQ(a.rounds[i].downlink_bytes, b.rounds[i].downlink_bytes);
    EXPECT_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss) << "round " << i;
    EXPECT_EQ(a.rounds[i].test_loss, b.rounds[i].test_loss) << "round " << i;
    EXPECT_EQ(a.rounds[i].top1, b.rounds[i].top1) << "round " << i;
    EXPECT_EQ(a.rounds[i].clock_seconds, b.rounds[i].clock_seconds);
    EXPECT_EQ(a.rounds[i].mean_staleness, b.rounds[i].mean_staleness);
    EXPECT_EQ(a.rounds[i].abandoned, b.rounds[i].abandoned);
    EXPECT_EQ(a.rounds[i].wasted_uplink_bytes,
              b.rounds[i].wasted_uplink_bytes);
  }
  EXPECT_EQ(a.total_dispatched, b.total_dispatched);
  EXPECT_EQ(a.total_committed, b.total_committed);
  EXPECT_EQ(a.total_abandoned, b.total_abandoned);
  EXPECT_EQ(a.total_wasted_uplink_bytes, b.total_wasted_uplink_bytes);
  EXPECT_EQ(a.final_buffered, b.final_buffered);
  EXPECT_EQ(a.final_in_flight, b.final_in_flight);
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << "param " << i;
  }
}

// The conservation ledger and clock monotonicity — the scenario property
// invariants every run must satisfy.
void expect_conserved(const fl::SimulationResult& r) {
  EXPECT_EQ(r.total_dispatched, r.total_committed + r.total_abandoned +
                                    r.final_buffered + r.final_in_flight);
  std::size_t parts = 0;
  std::size_t abandoned = 0;
  std::uint64_t wasted = 0;
  double clock = 0.0;
  for (const auto& rec : r.rounds) {
    parts += rec.participants;
    abandoned += rec.abandoned;
    wasted += rec.wasted_uplink_bytes;
    // No upper bound against kClients: buffered-K commits can hold several
    // updates from the same client across dispatch generations.
    EXPECT_GE(rec.participants, 1u);
    EXPECT_GE(rec.clock_seconds, clock) << "clock moved backwards";
    clock = rec.clock_seconds;
  }
  EXPECT_EQ(parts, r.total_committed);
  // Abandons after the final commit stay out of every RoundRecord.
  EXPECT_LE(abandoned, r.total_abandoned);
  EXPECT_LE(wasted, r.total_wasted_uplink_bytes);
  const double f = r.dropped_upload_fraction();
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

// --- Reference machinery: replays the engine's draws and formulas ---------

struct ReferenceRig {
  Fixture fx;
  std::vector<netsim::ClientProfile> profiles;
  std::unique_ptr<nn::Model> model;  ///< layout for decode, initial params
  std::vector<float> global;
  tensor::Rng rng{0};  ///< the engine's selection stream, mid-replay
  std::uint64_t downlink = 0;
};

// Replays AsyncSimulation::run()'s setup draw for draw: profiles from
// split(0xA11C), init params from split(0xF0F0), then rig.rng is positioned
// exactly where the engine's selection stream starts.
ReferenceRig make_rig(std::size_t rounds,
                      const netsim::HeterogeneityConfig& fleet,
                      fl::Strategy& strategy) {
  ReferenceRig rig;
  rig.fx = make_fixture(1, rounds);
  rig.rng = tensor::Rng(rig.fx.sim.seed);
  rig.profiles = netsim::make_profiles(rig.fx.partition.size(), fleet,
                                       rig.fx.sim.link, rig.rng.split(0xA11C));
  rig.model = rig.fx.factory();
  {
    tensor::Rng init_rng = rig.rng.split(0xF0F0);
    rig.model->init_params(init_rng);
  }
  const auto params = rig.model->store().params();
  rig.global.assign(params.begin(), params.end());
  rig.downlink = strategy.downlink_bytes(rig.global.size());
  return rig;
}

double reference_work_units(const Fixture& fx, fl::Strategy& strategy,
                            std::size_t client) {
  const double samples = static_cast<double>(std::min<std::size_t>(
      fx.sim.train.batch_size, fx.partition[client].size()));
  return static_cast<double>(fx.sim.train.local_iterations) * samples *
         strategy.compute_cost_multiplier();
}

struct Timing {
  double download = 0.0;
  double compute = 0.0;
  double upload = 0.0;
  // The engine hops training-done (download + compute) then arrival
  // (+ upload); keep the same association order.
  [[nodiscard]] double total() const { return (download + compute) + upload; }
};

Timing reference_timing(const ReferenceRig& rig, fl::Strategy& strategy,
                        std::size_t client, std::uint64_t payload_bytes) {
  Timing t;
  t.download = rig.profiles[client].download_seconds(rig.downlink);
  t.compute = rig.profiles[client].compute_seconds(
      reference_work_units(rig.fx, strategy, client));
  t.upload = rig.profiles[client].upload_seconds(payload_bytes);
  return t;
}

// Runs one client exactly as the engine's pool task would: same snapshot,
// same (client, stream) rng, same context. Round/version are fixed at 1/0 —
// every reference test observes the first commit only.
fl::ClientOutcome reference_run_client(const ReferenceRig& rig,
                                       fl::Strategy& strategy,
                                       std::size_t client,
                                       std::uint64_t stream,
                                       double dispatch_clock,
                                       double deadline) {
  auto replica = rig.fx.factory();
  const auto params = replica->store().params();
  std::copy(rig.global.begin(), rig.global.end(), params.begin());
  tensor::Rng ctx_rng =
      tensor::Rng(rig.fx.sim.seed).split(0x1000 + client).split(stream);
  fl::ClientContext ctx{
      .client_id = client,
      .round = 1,
      .model = *replica,
      .global_params = rig.global,
      .dataset = *rig.fx.train,
      .shard = rig.fx.partition[client],
      .settings = rig.fx.sim.train,
      .rng = ctx_rng,
      .model_version = 0,
      .dispatch_clock = dispatch_clock,
      .deadline_seconds = deadline,
  };
  fl::ClientOutcome out = strategy.run_client(ctx);
  out.client_id = client;
  return out;
}

// staleness_merge replicated bit for bit for τ = 0 commits (version 0).
std::vector<float> reference_async_merge(
    std::vector<float> global, const std::vector<fl::ClientOutcome>& batch) {
  std::vector<double> weights(batch.size());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    weights[k] = static_cast<double>(batch[k].samples) * std::pow(1.0, -0.5);
  }
  for (std::size_t i = 0; i < global.size(); ++i) {
    double acc = 0.0;
    double weight = 0.0;
    for (std::size_t k = 0; k < batch.size(); ++k) {
      if (!batch[k].present.test(i)) continue;
      const double v = static_cast<double>(batch[k].values[i]);
      const double delta =
          batch[k].is_update ? v : v - static_cast<double>(global[i]);
      acc += weights[k] * delta;
      weight += weights[k];
    }
    if (weight > 0.0) global[i] += static_cast<float>(0.6 * acc / weight);
  }
  return global;
}

// Replays the engine's *initial* async top_up: three uniform draws over the
// idle populated clients (ascending order, rebuilt between draws).
std::vector<std::size_t> replay_initial_topup(tensor::Rng& rng) {
  std::vector<std::size_t> idle;
  for (std::size_t c = 0; c < kClients; ++c) idle.push_back(c);
  std::vector<std::size_t> drawn;
  for (int k = 0; k < 3; ++k) {
    const std::size_t j = rng.uniform_index(idle.size());
    drawn.push_back(idle[j]);
    idle.erase(idle.begin() + static_cast<std::ptrdiff_t>(j));
  }
  return drawn;
}

// Test-local hooks: everything available, programmable churn, fixed
// deadline/over-selection.
struct TestHooks final : fl::EngineHooks {
  std::function<fl::ChurnDecision(std::size_t, std::size_t)> churn_fn;
  double deadline = 0.0;
  double over = 1.0;

  bool client_available(std::size_t, double) override { return true; }
  double next_available_time(std::size_t, double now) override { return now; }
  fl::ChurnDecision churn(std::size_t client, std::size_t seq) override {
    return churn_fn ? churn_fn(client, seq) : fl::ChurnDecision{};
  }
  double deadline_seconds() const override { return deadline; }
  double over_selection() const override { return over; }
};

// --- Engine integration: bit-identity and determinism ---------------------

// An all-defaults scenario must be bit-identical to no scenario at all in
// barrier mode: same selection draws, same events, same trajectory. (The
// async modes intentionally differ — their dispatch budgeting changes under
// a scenario — so only the barrier pins this.)
TEST(EngineScenario, EmptyScenarioBarrierBitIdentical) {
  for (const std::size_t threads : {1u, 4u}) {
    const auto plain =
        run_plain(fl::AggregationMode::kBarrier, threads, stressed_fleet());
    scenario::Config cfg;  // ideal: nothing active
    const auto hooked = run_scenario(cfg, fl::AggregationMode::kBarrier,
                                     threads, stressed_fleet());
    expect_identical(plain, hooked);
    EXPECT_EQ(plain.scenario, "");
    EXPECT_EQ(hooked.scenario, "unnamed");
    EXPECT_EQ(hooked.total_abandoned, 0u);
    EXPECT_EQ(hooked.total_wasted_uplink_bytes, 0u);
    expect_conserved(hooked);
  }
}

TEST(EngineScenario, HookFreeLedgerIsClean) {
  for (const auto mode :
       {fl::AggregationMode::kBarrier, fl::AggregationMode::kFedAsync,
        fl::AggregationMode::kBufferedK}) {
    const auto r = run_plain(mode, 2, stressed_fleet());
    expect_conserved(r);
    EXPECT_EQ(r.total_abandoned, 0u);
    EXPECT_EQ(r.total_wasted_uplink_bytes, 0u);
    EXPECT_EQ(r.scenario, "");
  }
}

// Thread-count invariance under every scenario knob, for every mode: churn
// only, availability only (exercises the dispatch-retry path), and the
// full flash-crowd combination (availability + churn + deadline +
// over-selection).
class ScenarioDeterminism
    : public ::testing::TestWithParam<fl::AggregationMode> {};

TEST_P(ScenarioDeterminism, ThreadCountInvariantUnderEveryKnob) {
  std::vector<scenario::Config> configs(3);
  configs[0].name = "churn_heavy";
  configs[0].seed = 72;
  configs[0].over_selection = 1.5;
  configs[0].churn = scenario::ChurnConfig{.failure_rate = 0.4};
  configs[1].name = "diurnal";
  configs[1].seed = 75;
  configs[1].availability = scenario::AvailabilityConfig{
      .period_seconds = 2.0,
      .window_fraction = 0.5,
      .on_probability = 0.9,
      .correlation = 0.5,
  };
  configs[2].name = "flash_crowd";
  configs[2].seed = 76;
  configs[2].over_selection = 2.0;
  configs[2].deadline_seconds = 1.0;
  configs[2].availability = scenario::AvailabilityConfig{
      .period_seconds = 1.0,
      .window_fraction = 0.8,
      .on_probability = 0.7,
      .correlation = 0.8,
  };
  configs[2].churn = scenario::ChurnConfig{.failure_rate = 0.2};
  for (const auto& cfg : configs) {
    const auto t1 = run_scenario(cfg, GetParam(), 1, stressed_fleet(), 3);
    const auto t4 = run_scenario(cfg, GetParam(), 4, stressed_fleet(), 3);
    expect_identical(t1, t4);
    expect_conserved(t1);
    EXPECT_EQ(t1.scenario, cfg.name);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ScenarioDeterminism,
                         ::testing::Values(fl::AggregationMode::kBarrier,
                                           fl::AggregationMode::kFedAsync,
                                           fl::AggregationMode::kBufferedK),
                         [](const auto& info) {
                           return std::string(fl::to_string(info.param));
                         });

// --- Hand-computed partial-cohort references ------------------------------

// Barrier + deadline: replay the engine's wave, compute each member's
// timeline, pick a deadline that cuts exactly the slowest member, and check
// the engine's partial aggregate against fl::aggregate over the survivors.
TEST(EngineScenario, BarrierDeadlineMatchesHandComputedReference) {
  baselines::FedAvgStrategy strategy;
  const auto fleet = stressed_fleet();
  ReferenceRig rig = make_rig(1, fleet, strategy);
  const auto picks = rig.rng.sample_without_replacement(kClients, 3);

  struct Member {
    std::size_t client;
    fl::ClientOutcome out;
    Timing t;
  };
  std::vector<Member> wave;
  for (const std::size_t client : picks) {
    // The engine passes the configured deadline into ClientContext; FedAvg
    // ignores it, so running with 0 here yields the identical outcome.
    fl::ClientOutcome out =
        reference_run_client(rig, strategy, client, /*stream=*/1, 0.0, 0.0);
    const Timing t = reference_timing(rig, strategy, client, out.payload.size());
    wave.push_back({client, std::move(out), t});
  }
  std::vector<double> totals;
  for (const auto& m : wave) totals.push_back(m.t.total());
  std::vector<double> sorted = totals;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_LT(sorted[0], sorted[1]);
  ASSERT_LT(sorted[1], sorted[2]);
  const double deadline = 0.5 * (sorted[1] + sorted[2]);

  // Survivors aggregate in selection-slot order, exactly like a full wave.
  std::vector<fl::ClientOutcome> survivors;
  std::uint64_t expect_wasted = 0;
  std::uint64_t expect_uplink = 0;
  for (auto& m : wave) {
    if (m.t.total() < deadline) {
      fl::decode_outcome(strategy, rig.model->store(), m.out);
      expect_uplink += m.out.uplink_bytes;
      survivors.push_back(std::move(m.out));
    } else if (deadline > m.t.download + m.t.compute) {
      // Cut mid-upload: the engine charges the pushed fraction as wasted.
      const double frac = std::clamp(
          (deadline - (m.t.download + m.t.compute)) / m.t.upload, 0.0, 1.0);
      expect_wasted += static_cast<std::uint64_t>(
          static_cast<double>(m.out.payload.size()) * frac);
    }
  }
  ASSERT_EQ(survivors.size(), 2u);
  std::vector<float> expect = rig.global;
  fl::aggregate(expect, survivors, strategy.aggregation_rule());

  scenario::Config cfg;
  cfg.name = "deadline_ref";
  cfg.deadline_seconds = deadline;
  const auto r =
      run_scenario(cfg, fl::AggregationMode::kBarrier, 1, fleet, /*rounds=*/1);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.rounds[0].participants, 2u);
  EXPECT_EQ(r.rounds[0].abandoned, 1u);
  EXPECT_EQ(r.rounds[0].uplink_bytes_total, expect_uplink);
  EXPECT_EQ(r.rounds[0].wasted_uplink_bytes, expect_wasted);
  EXPECT_EQ(r.rounds[0].clock_seconds, deadline);  // the cutoff commits
  EXPECT_EQ(r.total_abandoned, 1u);
  expect_conserved(r);
  ASSERT_EQ(r.final_params.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(r.final_params[i], expect[i]) << "param " << i;
  }
}

// Barrier + churn: slot 1 of the wave dies before its upload starts; the
// engine must aggregate slots 0 and 2 exactly as a two-member wave.
TEST(EngineScenario, BarrierChurnMatchesHandComputedReference) {
  baselines::FedAvgStrategy strategy;
  const auto fleet = stressed_fleet();
  ReferenceRig rig = make_rig(1, fleet, strategy);
  const auto picks = rig.rng.sample_without_replacement(kClients, 3);

  std::vector<fl::ClientOutcome> survivors;
  for (std::size_t slot = 0; slot < picks.size(); ++slot) {
    fl::ClientOutcome out =
        reference_run_client(rig, strategy, picks[slot], /*stream=*/1, 0.0, 0.0);
    if (slot == 1) {
      // Dies at 10% of its timeline — before training completes, so no
      // bytes were pushed.
      const Timing t =
          reference_timing(rig, strategy, picks[slot], out.payload.size());
      ASSERT_LE(0.1 * t.total(), t.download + t.compute);
      continue;
    }
    fl::decode_outcome(strategy, rig.model->store(), out);
    survivors.push_back(std::move(out));
  }
  std::vector<float> expect = rig.global;
  fl::aggregate(expect, survivors, strategy.aggregation_rule());

  auto hooks = std::make_shared<TestHooks>();
  hooks->churn_fn = [](std::size_t, std::size_t seq) {
    return fl::ChurnDecision{.fails = seq == 1, .fraction = 0.1};
  };
  const auto r = run_hooked(hooks, "churn_ref", fl::AggregationMode::kBarrier,
                            1, fleet, /*rounds=*/1);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.rounds[0].participants, 2u);
  EXPECT_EQ(r.rounds[0].abandoned, 1u);
  EXPECT_EQ(r.rounds[0].wasted_uplink_bytes, 0u);
  expect_conserved(r);
  ASSERT_EQ(r.final_params.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(r.final_params[i], expect[i]) << "param " << i;
  }
}

// Churn at 99.99% of the timeline dies mid-upload: the wasted-byte ledger
// must charge exactly the pushed fraction of the payload.
TEST(EngineScenario, ChurnMidUploadChargesWastedBytes) {
  baselines::FedAvgStrategy strategy;
  const auto fleet = stressed_fleet();
  ReferenceRig rig = make_rig(1, fleet, strategy);
  const auto picks = rig.rng.sample_without_replacement(kClients, 3);
  const double kFraction = 0.9999;

  const std::size_t victim = picks[0];
  fl::ClientOutcome out =
      reference_run_client(rig, strategy, victim, /*stream=*/1, 0.0, 0.0);
  const Timing t = reference_timing(rig, strategy, victim, out.payload.size());
  const double fail_t = kFraction * t.total();
  ASSERT_GT(fail_t, t.download + t.compute) << "victim must die mid-upload";
  const double frac = (fail_t - (t.download + t.compute)) / t.upload;
  const auto expect_wasted = static_cast<std::uint64_t>(
      static_cast<double>(out.payload.size()) * frac);
  ASSERT_GT(expect_wasted, 0u);

  auto hooks = std::make_shared<TestHooks>();
  hooks->churn_fn = [kFraction](std::size_t, std::size_t seq) {
    return fl::ChurnDecision{.fails = seq == 0, .fraction = kFraction};
  };
  const auto r = run_hooked(hooks, "churn_waste", fl::AggregationMode::kBarrier,
                            1, fleet, /*rounds=*/1);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.rounds[0].participants, 2u);
  EXPECT_EQ(r.rounds[0].wasted_uplink_bytes, expect_wasted);
  EXPECT_EQ(r.total_wasted_uplink_bytes, expect_wasted);
  expect_conserved(r);
}

// FedAsync + churn over a homogeneous fleet: the first dispatch dies during
// compute, so the first *arrival* is the second dispatch, and the commit is
// a single staleness-weighted merge of exactly that update.
TEST(EngineScenario, FedAsyncChurnMatchesHandComputedReference) {
  baselines::FedAvgStrategy strategy;
  const netsim::HeterogeneityConfig homogeneous;
  ReferenceRig rig = make_rig(1, homogeneous, strategy);
  const auto drawn = replay_initial_topup(rig.rng);

  fl::ClientOutcome survivor = reference_run_client(
      rig, strategy, drawn[1], /*stream=*/0x10000 + 1, 0.0, 0.0);
  const Timing t =
      reference_timing(rig, strategy, drawn[0], survivor.payload.size());
  ASSERT_LE(0.1 * t.total(), t.download + t.compute)
      << "victim must die before its upload starts";
  fl::decode_outcome(strategy, rig.model->store(), survivor);
  const std::vector<float> expect =
      reference_async_merge(rig.global, {survivor});

  auto hooks = std::make_shared<TestHooks>();
  hooks->churn_fn = [](std::size_t, std::size_t seq) {
    return fl::ChurnDecision{.fails = seq == 0, .fraction = 0.1};
  };
  const auto r = run_hooked(hooks, "fedasync_churn",
                            fl::AggregationMode::kFedAsync, 1, homogeneous,
                            /*rounds=*/1);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.rounds[0].participants, 1u);
  EXPECT_EQ(r.rounds[0].mean_staleness, 0.0);
  EXPECT_EQ(r.total_abandoned, 1u);
  // The immediate abandon triggered a replacement dispatch before the
  // commit: 3 initial + 1 replacement, two still in flight at exit.
  EXPECT_EQ(r.total_dispatched, 4u);
  EXPECT_EQ(r.final_in_flight, 2u);
  expect_conserved(r);
  ASSERT_EQ(r.final_params.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(r.final_params[i], expect[i]) << "param " << i;
  }
}

// --- Deadline emulation for the async modes -------------------------------

// Replays the deadline-only async timeline (no churn, no availability)
// independently of the engine: per-job arrival/deadline races, top-up
// replacement draws, and the first K-arrival commit. Used as the
// hand-computed reference for FedAsync (K=1) and buffered-K partial
// cohorts, where abandons trigger replacement dispatches that a closed-form
// reference cannot enumerate.
struct EmulationResult {
  std::vector<float> params;
  std::size_t dispatched = 0;
  std::size_t abandoned = 0;
  std::size_t in_flight = 0;
  std::size_t committed = 0;
  double commit_clock = 0.0;
};

EmulationResult emulate_async_deadline(ReferenceRig& rig,
                                       fl::Strategy& strategy,
                                       std::size_t k_commit, double deadline) {
  struct EmuJob {
    std::size_t seq = 0;
    std::size_t client = 0;
    double arrival_t = 0.0;
    double deadline_t = 0.0;
    fl::ClientOutcome out;
  };
  std::vector<EmuJob> active;
  std::vector<fl::ClientOutcome> buffer;
  std::size_t seq = 0;
  EmulationResult res;

  auto busy = [&](std::size_t c) {
    for (const auto& j : active) {
      if (j.client == c) return true;
    }
    return false;
  };
  auto top_up = [&](double now) {
    while (active.size() < 3) {
      std::vector<std::size_t> avail;
      for (std::size_t c = 0; c < kClients; ++c) {
        if (!busy(c)) avail.push_back(c);
      }
      const std::size_t client = avail[rig.rng.uniform_index(avail.size())];
      EmuJob job;
      job.seq = seq;
      job.client = client;
      job.out = reference_run_client(rig, strategy, client, 0x10000 + seq,
                                     now, deadline);
      const Timing t =
          reference_timing(rig, strategy, client, job.out.payload.size());
      job.arrival_t = (now + (t.download + t.compute)) + t.upload;
      job.deadline_t = now + deadline;
      ++seq;
      active.push_back(std::move(job));
    }
  };

  top_up(0.0);
  for (int guard = 0;; ++guard) {
    FEDBIAD_CHECK(guard < 2000, "deadline emulation failed to converge");
    // Each job resolves at its arrival if that is strictly before its
    // deadline (the engine schedules the deadline event first, so an exact
    // tie is a cutoff), else at its deadline.
    double best_t = std::numeric_limits<double>::infinity();
    for (const auto& j : active) {
      best_t = std::min(best_t,
                        j.arrival_t < j.deadline_t ? j.arrival_t : j.deadline_t);
    }
    // Same-instant resolutions: only equal *deadlines* are legitimate (two
    // replacements dispatched at the same abandon instant); the engine
    // orders their events by dispatch sequence.
    std::size_t pick = active.size();
    bool pick_arrives = false;
    std::size_t ties = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const bool arrives = active[i].arrival_t < active[i].deadline_t;
      const double t = arrives ? active[i].arrival_t : active[i].deadline_t;
      if (t != best_t) continue;
      ++ties;
      if (pick == active.size() || active[i].seq < active[pick].seq) {
        pick = i;
        pick_arrives = arrives;
      }
      FEDBIAD_CHECK(!arrives || ties == 1,
                    "emulation fixture hit an arrival-time tie");
    }
    EmuJob job = std::move(active[pick]);
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
    if (pick_arrives) {
      fl::decode_outcome(strategy, rig.model->store(), job.out);
      buffer.push_back(std::move(job.out));
      if (buffer.size() == k_commit) {
        res.commit_clock = best_t;
        break;
      }
      top_up(best_t);
    } else {
      ++res.abandoned;
      top_up(best_t);
    }
  }
  res.params = reference_async_merge(rig.global, buffer);
  res.dispatched = seq;
  res.in_flight = active.size();
  res.committed = buffer.size();
  return res;
}

// Probe the wave the engine will dispatch first, so the test can position
// the deadline between two completion times. FedAvg uploads are dense, so
// every timeline is computable without running the client.
std::vector<double> probe_initial_totals(fl::Strategy& strategy,
                                         const netsim::HeterogeneityConfig& fleet) {
  ReferenceRig probe = make_rig(1, fleet, strategy);
  const auto drawn = replay_initial_topup(probe.rng);
  const std::uint64_t payload = wire::dense_f32_bytes(probe.global.size());
  std::vector<double> totals;
  for (const std::size_t c : drawn) {
    totals.push_back(reference_timing(probe, strategy, c, payload).total());
  }
  return totals;
}

// Buffered-K (K = 2) + deadline placed between the two fastest initial
// completions: the two slower initial members are cut off, replacements are
// drawn, and the commit is a partial cohort of the two earliest survivors.
TEST(EngineScenario, BufferedDeadlineMatchesEmulatedReference) {
  baselines::FedAvgStrategy strategy;
  const auto fleet = stressed_fleet();
  std::vector<double> totals = probe_initial_totals(strategy, fleet);
  std::sort(totals.begin(), totals.end());
  ASSERT_LT(totals[0], totals[1]);
  // Place the deadline just above the fastest initial member: close enough
  // that no replacement (dispatched at that first arrival) can complete
  // before the two slow initial members hit their cutoff. A plain midpoint
  // between totals[0] and totals[1] leaves room for a globally-fast
  // replacement to fill the buffer before anyone is cut.
  ReferenceRig min_probe = make_rig(1, fleet, strategy);
  const std::uint64_t dense = wire::dense_f32_bytes(min_probe.global.size());
  double min_total = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < kClients; ++c) {
    min_total = std::min(
        min_total, reference_timing(min_probe, strategy, c, dense).total());
  }
  const double deadline = totals[0] + 0.5 * min_total;
  ASSERT_LT(deadline, totals[1]) << "slow members must miss the deadline";

  ReferenceRig rig = make_rig(1, fleet, strategy);
  const EmulationResult emu =
      emulate_async_deadline(rig, strategy, /*k_commit=*/2, deadline);
  ASSERT_GE(emu.abandoned, 1u) << "fixture must actually cut someone off";

  scenario::Config cfg;
  cfg.name = "buffered_deadline";
  cfg.deadline_seconds = deadline;
  const auto r = run_scenario(cfg, fl::AggregationMode::kBufferedK, 1, fleet,
                              /*rounds=*/1, /*buffer_k=*/2);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.rounds[0].participants, 2u);
  EXPECT_EQ(r.rounds[0].clock_seconds, emu.commit_clock);
  EXPECT_EQ(r.total_dispatched, emu.dispatched);
  EXPECT_EQ(r.total_abandoned, emu.abandoned);
  EXPECT_EQ(r.final_in_flight, emu.in_flight);
  EXPECT_EQ(r.final_buffered, 0u);
  expect_conserved(r);
  ASSERT_EQ(r.final_params.size(), emu.params.size());
  for (std::size_t i = 0; i < emu.params.size(); ++i) {
    ASSERT_EQ(r.final_params[i], emu.params[i]) << "param " << i;
  }
}

// FedAsync (K = 1) + a deadline only the globally fastest client can beat:
// the whole initial cohort may be cut off and replacements cycle until the
// fastest client gets drawn and survives.
TEST(EngineScenario, FedAsyncDeadlineMatchesEmulatedReference) {
  baselines::FedAvgStrategy strategy;
  const auto fleet = stressed_fleet();
  ReferenceRig probe = make_rig(1, fleet, strategy);
  const std::uint64_t payload = wire::dense_f32_bytes(probe.global.size());
  std::vector<double> totals;
  for (std::size_t c = 0; c < kClients; ++c) {
    totals.push_back(reference_timing(probe, strategy, c, payload).total());
  }
  std::sort(totals.begin(), totals.end());
  ASSERT_LT(totals[0], totals[1]);
  const double deadline = 0.5 * (totals[0] + totals[1]);

  ReferenceRig rig = make_rig(1, fleet, strategy);
  const EmulationResult emu =
      emulate_async_deadline(rig, strategy, /*k_commit=*/1, deadline);

  scenario::Config cfg;
  cfg.name = "fedasync_deadline";
  cfg.deadline_seconds = deadline;
  const auto r = run_scenario(cfg, fl::AggregationMode::kFedAsync, 1, fleet,
                              /*rounds=*/1);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.rounds[0].participants, 1u);
  EXPECT_EQ(r.rounds[0].clock_seconds, emu.commit_clock);
  EXPECT_EQ(r.total_dispatched, emu.dispatched);
  EXPECT_EQ(r.total_abandoned, emu.abandoned);
  EXPECT_EQ(r.final_in_flight, emu.in_flight);
  expect_conserved(r);
  ASSERT_EQ(r.final_params.size(), emu.params.size());
  for (std::size_t i = 0; i < emu.params.size(); ++i) {
    ASSERT_EQ(r.final_params[i], emu.params[i]) << "param " << i;
  }
}

// --- Starvation, stress, and accounting -----------------------------------

// A deadline below every client's minimum timeline can never commit; the
// dispatch cap must turn that into a loud error instead of an endless loop.
TEST(EngineScenario, StarvedScenarioThrowsAtDispatchCap) {
  scenario::Config cfg;
  cfg.name = "starved";
  cfg.deadline_seconds = 1e-4;
  EXPECT_THROW(run_scenario(cfg, fl::AggregationMode::kBarrier, 1,
                            stressed_fleet(), /*rounds=*/1),
               CheckError);
}

// Backfill stress: K = 8 exceeds the 3 clients ever simultaneously in
// flight, so every commit needs arrivals from multiple dispatch
// generations.
TEST(EngineScenario, BufferedKExceedsInFlightCohort) {
  scenario::Config cfg;
  cfg.name = "backfill";
  cfg.seed = 21;
  cfg.churn = scenario::ChurnConfig{.failure_rate = 0.2};
  const auto t1 = run_scenario(cfg, fl::AggregationMode::kBufferedK, 1,
                               stressed_fleet(), /*rounds=*/2, /*buffer_k=*/8);
  const auto t2 = run_scenario(cfg, fl::AggregationMode::kBufferedK, 2,
                               stressed_fleet(), /*rounds=*/2, /*buffer_k=*/8);
  expect_identical(t1, t2);
  expect_conserved(t1);
  ASSERT_EQ(t1.rounds.size(), 2u);
  EXPECT_EQ(t1.rounds[0].participants, 8u);
  EXPECT_EQ(t1.rounds[1].participants, 8u);
  EXPECT_GE(t1.total_dispatched, 16u);
}

// Staleness stress: a 128× straggler multiplier makes some snapshots
// extremely old under FedAsync without breaking determinism or the ledger.
// Enough rounds that the fast clients cycle the clock past the stragglers'
// ~128×-long timelines, so their ancient updates actually arrive and
// commit; no churn, so nothing can abandon them first.
TEST(EngineScenario, FedAsyncSurvivesExtremeStragglers) {
  netsim::HeterogeneityConfig fleet = stressed_fleet();
  fleet.straggler_multiplier = 128.0;
  scenario::Config cfg;
  cfg.name = "staleness_stress";
  cfg.seed = 31;
  cfg.over_selection = 1.5;
  const auto t1 = run_scenario(cfg, fl::AggregationMode::kFedAsync, 1, fleet,
                               /*rounds=*/200);
  const auto t4 = run_scenario(cfg, fl::AggregationMode::kFedAsync, 4, fleet,
                               /*rounds=*/200);
  expect_identical(t1, t4);
  expect_conserved(t1);
  double max_staleness = 0.0;
  for (const auto& rec : t1.rounds) {
    max_staleness = std::max(max_staleness, rec.mean_staleness);
  }
  EXPECT_GT(max_staleness, 0.0) << "stragglers should produce stale commits";
}

// Satellite regression: abandoned uploads must never be double-counted into
// uplink traffic. Every round's uplink must be exactly participants ×
// dense-payload size (the wire::accounting oracle), no matter how many
// uploads the deadline cut off mid-flight.
TEST(EngineScenario, UplinkAccountingExcludesAbandonedUnderCutoff) {
  scenario::Config cfg;
  cfg.name = "cutoff_accounting";
  cfg.seed = 73;
  cfg.over_selection = 1.5;
  cfg.deadline_seconds = 0.12;
  const auto r = run_scenario(cfg, fl::AggregationMode::kBarrier, 2,
                              stressed_fleet(), /*rounds=*/4);
  const std::uint64_t dense =
      wire::dense_f32_bytes(r.final_params.size());
  for (const auto& rec : r.rounds) {
    EXPECT_EQ(rec.uplink_bytes_total, rec.participants * dense)
        << "round " << rec.round;
    EXPECT_EQ(rec.uplink_bytes_max, rec.participants > 0 ? dense : 0u);
    // Wasted bytes stay in their own ledger and are bounded by what the
    // abandoned uploads could possibly have pushed.
    EXPECT_LE(rec.wasted_uplink_bytes, rec.abandoned * dense);
  }
  EXPECT_GT(r.total_abandoned, 0u) << "fixture must exercise the cutoff";
  expect_conserved(r);
}

TEST(EngineScenario, UplinkAccountingExcludesChurnedUploads) {
  scenario::Config cfg;
  cfg.name = "churn_accounting";
  cfg.seed = 72;
  cfg.over_selection = 1.5;
  cfg.churn = scenario::ChurnConfig{.failure_rate = 0.4};
  const auto r = run_scenario(cfg, fl::AggregationMode::kBufferedK, 2,
                              stressed_fleet(), /*rounds=*/4, /*buffer_k=*/2);
  const std::uint64_t dense =
      wire::dense_f32_bytes(r.final_params.size());
  std::uint64_t uplink = 0;
  for (const auto& rec : r.rounds) uplink += rec.uplink_bytes_total;
  EXPECT_EQ(uplink, r.total_committed * dense);
  EXPECT_GT(r.total_abandoned, 0u) << "fixture must exercise churn";
  EXPECT_LE(r.total_wasted_uplink_bytes, r.total_abandoned * dense);
  expect_conserved(r);
}

// decode_outcome's double-decode guard — the invariant that makes
// "abandoned uploads are never decoded, so never counted" checkable.
TEST(EngineScenario, DecodeOutcomeRejectsDoubleDecode) {
  baselines::FedAvgStrategy strategy;
  ReferenceRig rig = make_rig(1, {}, strategy);
  fl::ClientOutcome out =
      reference_run_client(rig, strategy, 0, /*stream=*/1, 0.0, 0.0);
  fl::decode_outcome(strategy, rig.model->store(), out);
  EXPECT_EQ(out.uplink_bytes, wire::dense_f32_bytes(rig.global.size()));
  EXPECT_THROW(fl::decode_outcome(strategy, rig.model->store(), out),
               CheckError);
}

// --- Fuzzed scenario invariants -------------------------------------------

scenario::Config fuzz_config(tensor::Rng& rng) {
  scenario::Config cfg;
  cfg.name = "fuzz";
  cfg.seed = rng.next_u64() >> 1;
  cfg.over_selection = 1.0 + rng.uniform();
  if (rng.bernoulli(0.5)) {
    // Above the homogeneous-fleet minimum timeline (~0.03 s), so the
    // fastest clients always beat the cutoff and the scenario cannot
    // starve the engine.
    cfg.deadline_seconds = 0.04 + 0.46 * rng.uniform();
  }
  if (rng.bernoulli(0.6)) {
    cfg.availability = scenario::AvailabilityConfig{
        .period_seconds = 0.5 + 1.5 * rng.uniform(),
        .window_fraction = 0.4 + 0.6 * rng.uniform(),
        .on_probability = 0.5 + 0.5 * rng.uniform(),
        .correlation = 0.8 * rng.uniform(),
    };
  }
  if (rng.bernoulli(0.6)) {
    cfg.churn = scenario::ChurnConfig{.failure_rate = 0.5 * rng.uniform()};
  }
  cfg.validate();
  return cfg;
}

class ScenarioFuzz : public ::testing::TestWithParam<int> {};

// Thirty randomized (but seeded) scenarios across all modes: whatever the
// knobs, the conservation ledger holds, the virtual clock is monotone, and
// a scenario with nothing to abandon abandons nothing.
TEST_P(ScenarioFuzz, InvariantsHoldUnderRandomScenarios) {
  tensor::Rng rng(0xF022 + static_cast<std::uint64_t>(GetParam()));
  const scenario::Config cfg = fuzz_config(rng);
  const fl::AggregationMode mode =
      std::array{fl::AggregationMode::kBarrier, fl::AggregationMode::kFedAsync,
                 fl::AggregationMode::kBufferedK}[GetParam() % 3];
  netsim::HeterogeneityConfig fleet;
  fleet.compute_spread = 1.0 + rng.uniform();
  fleet.bandwidth_spread = 1.0 + rng.uniform();
  const auto r = run_scenario(cfg, mode, 1, fleet, /*rounds=*/2);
  expect_conserved(r);
  EXPECT_EQ(r.rounds.size(), 2u);
  EXPECT_EQ(r.scenario, "fuzz");
  if (!cfg.churn.has_value() && cfg.deadline_seconds == 0.0) {
    EXPECT_EQ(r.total_abandoned, 0u);
    EXPECT_EQ(r.total_wasted_uplink_bytes, 0u);
  }
  if (r.total_abandoned == 0) {
    EXPECT_EQ(r.total_wasted_uplink_bytes, 0u);
    EXPECT_EQ(r.dropped_upload_fraction(), 0.0);
  }
  // A third of the cases additionally pin thread-count invariance.
  if (GetParam() % 3 == 0) {
    const auto r2 = run_scenario(cfg, mode, 2, fleet, /*rounds=*/2);
    expect_identical(r, r2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioFuzz, ::testing::Range(0, 30));

}  // namespace
}  // namespace fedbiad
