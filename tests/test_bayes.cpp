// Tests for the Bayesian machinery: eq. 13/14/15 calculators, minimax-rate
// helpers, and spike-and-slab sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "bayes/spike_slab.hpp"
#include "bayes/theory.hpp"
#include "common/check.hpp"
#include "tensor/rng.hpp"

namespace fedbiad::bayes {
namespace {

ModelStructure small_structure() {
  return {.sparsity = 1000,
          .layers = 2,
          .width = 128,
          .input = 64,
          .weight_bound = 2.0};
}

TEST(Theory, MinClientDataFollowsPaperFormula) {
  EXPECT_EQ(min_client_data(10, 20, 50), 10u * 20 * 50);
  EXPECT_EQ(min_client_data(0, 20, 50), 0u);
}

TEST(Theory, PosteriorVarianceIsPositiveAndTiny) {
  const double s2 = posterior_variance(small_structure(), 10000);
  EXPECT_GT(s2, 0.0);
  EXPECT_LT(s2, 1e-6);  // (2BD)^{-2L} decay makes eq. 13 minuscule
}

TEST(Theory, PosteriorVarianceDecreasesWithSamples) {
  const auto s = small_structure();
  EXPECT_GT(posterior_variance(s, 100), posterior_variance(s, 1000));
  EXPECT_GT(posterior_variance(s, 1000), posterior_variance(s, 100000));
}

TEST(Theory, PosteriorVarianceDecreasesWithDepth) {
  auto shallow = small_structure();
  auto deep = small_structure();
  deep.layers = 4;
  EXPECT_GT(posterior_variance(shallow, 1000),
            posterior_variance(deep, 1000));
}

TEST(Theory, PosteriorVarianceScalesWithSparsity) {
  auto a = small_structure();
  auto b = small_structure();
  b.sparsity = 2 * a.sparsity;
  EXPECT_NEAR(posterior_variance(b, 1000) / posterior_variance(a, 1000), 2.0,
              1e-9);
}

TEST(Theory, PosteriorVarianceRejectsInvalidStructure) {
  auto s = small_structure();
  s.weight_bound = 1.0;  // violates Assumption 2 (B >= 2)
  EXPECT_THROW(posterior_variance(s, 100), fedbiad::CheckError);
  s = small_structure();
  s.sparsity = 0;
  EXPECT_THROW(posterior_variance(s, 100), fedbiad::CheckError);
}

TEST(Theory, EpsilonBoundDecaysWithData) {
  const auto s = small_structure();
  // eq. 15 is O(S·log(m)/m): strictly decreasing in m for large m.
  double prev = epsilon_bound(s, 1000);
  for (const std::size_t m : {10000, 100000, 1000000}) {
    const double cur = epsilon_bound(s, m);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Theory, EpsilonBoundGrowsWithSparsityAndDepth) {
  auto s = small_structure();
  const double base = epsilon_bound(s, 10000);
  auto wider = s;
  wider.sparsity *= 2;
  EXPECT_GT(epsilon_bound(wider, 10000), base);
  auto deeper = s;
  deeper.layers += 2;
  EXPECT_GT(epsilon_bound(deeper, 10000), base);
}

TEST(Theory, GeneralizationBoundCombinesTerms) {
  // eq. 14 with ξ̄ = 0 reduces to the ε term; adding ξ̄ adds 2ξ̄/(1-α).
  const double eps = 0.01;
  const double base = generalization_bound(0.5, 1.0, eps, 0.0);
  EXPECT_GT(base, 0.0);
  const double with_xi = generalization_bound(0.5, 1.0, eps, 0.1);
  EXPECT_NEAR(with_xi - base, 2.0 * 0.1 / 0.5, 1e-12);
}

TEST(Theory, GeneralizationBoundRejectsBadTempering) {
  EXPECT_THROW(generalization_bound(0.0, 1.0, 0.1, 0.0), fedbiad::CheckError);
  EXPECT_THROW(generalization_bound(1.0, 1.0, 0.1, 0.0), fedbiad::CheckError);
  EXPECT_THROW(generalization_bound(0.5, 0.0, 0.1, 0.0), fedbiad::CheckError);
}

TEST(Theory, MinimaxRateMatchesClosedForm) {
  // gamma = d/2 gives exponent -1/2.
  EXPECT_NEAR(minimax_rate(10000, 2.0, 4), 1.0 / 100.0, 1e-9);
  EXPECT_NEAR(minimax_rate(256, 1.0, 2), std::pow(256.0, -0.5), 1e-9);
}

TEST(Theory, HolderBoundIsRateTimesSquaredLog) {
  const std::size_t m = 100000;
  const double rate = minimax_rate(m, 1.5, 8);
  const double bound = holder_upper_bound(m, 1.5, 8, 3.0);
  const double lg = std::log(static_cast<double>(m));
  EXPECT_NEAR(bound, 3.0 * rate * lg * lg, 1e-12);
}

TEST(Theory, UpperBoundDominatesLowerBoundUpToLogFactor) {
  // The paper's conclusion: upper (eq. 17) / lower (eq. 18) = O(log² m) —
  // i.e. the ratio divided by log²m stays bounded as m grows.
  const double gamma = 2.0;
  const std::size_t d = 16;
  double prev_ratio = 1e300;
  for (const std::size_t m : {1000, 10000, 100000, 1000000}) {
    const double upper = holder_upper_bound(m, gamma, d, 1.0);
    const double lower = minimax_rate(m, gamma, d);
    const double lg = std::log(static_cast<double>(m));
    const double normalized = upper / (lower * lg * lg);
    EXPECT_NEAR(normalized, 1.0, 1e-9);
    prev_ratio = normalized;
  }
  (void)prev_ratio;
}

TEST(SpikeSlab, SampleGaussianMatchesMoments) {
  tensor::Rng rng(61);
  std::vector<float> u(20000, 2.0F);
  std::vector<float> theta(u.size());
  sample_gaussian(u, 0.25, rng, theta);
  double mean = 0.0;
  for (float t : theta) mean += t;
  mean /= static_cast<double>(theta.size());
  double var = 0.0;
  for (float t : theta) var += (t - mean) * (t - mean);
  var /= static_cast<double>(theta.size());
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(SpikeSlab, ZeroVarianceIsIdentity) {
  tensor::Rng rng(67);
  std::vector<float> u{1.0F, -2.0F, 3.0F};
  std::vector<float> theta(3);
  sample_gaussian(u, 0.0, rng, theta);
  EXPECT_EQ(theta[0], 1.0F);
  EXPECT_EQ(theta[1], -2.0F);
  EXPECT_EQ(theta[2], 3.0F);
}

TEST(SpikeSlab, SampleGaussianAllowsAliasing) {
  tensor::Rng rng(71);
  std::vector<float> u{5.0F, 5.0F};
  sample_gaussian(u, 1e-6, rng, u);
  EXPECT_NEAR(u[0], 5.0F, 0.01F);
}

TEST(SpikeSlab, KlBehavesLikeL2) {
  // With fixed variances the KL term grows exactly quadratically in ‖u‖ —
  // the paper's "approximates L2 regularisation" remark (eq. 2).
  std::vector<float> u1{1.0F, 0.0F};
  std::vector<float> u2{2.0F, 0.0F};
  const double kl0 = gaussian_kl(std::vector<float>{0.0F, 0.0F}, 0.01, 1.0);
  const double kl1 = gaussian_kl(u1, 0.01, 1.0);
  const double kl2 = gaussian_kl(u2, 0.01, 1.0);
  EXPECT_NEAR((kl2 - kl0) / (kl1 - kl0), 4.0, 1e-9);
}

TEST(SpikeSlab, KlIsZeroForMatchingDistributions) {
  std::vector<float> u{0.0F, 0.0F, 0.0F};
  EXPECT_NEAR(gaussian_kl(u, 1.0, 1.0), 0.0, 1e-12);
}

TEST(SpikeSlab, MeanZeroesDroppedRows) {
  std::vector<float> mu{1.0F, 2.0F};
  std::vector<float> out(2, 9.0F);
  spike_slab_mean(mu, false, out);
  EXPECT_EQ(out[0], 0.0F);
  spike_slab_mean(mu, true, out);
  EXPECT_EQ(out[1], 2.0F);
}

}  // namespace
}  // namespace fedbiad::bayes
