// Kernel-equivalence golden tests: the blocked GEMM substrate
// (tensor/gemm.hpp) and every layer routed through it must match the
// retained scalar reference implementations within 1e-4 on randomized
// shapes — including ragged/odd sizes that stress the register-tile edges
// and strided operands that exercise the bias-in-row layouts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <tuple>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/parameter_store.hpp"
#include "nn/rnn.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"
#include "tensor/workspace.hpp"

namespace fedbiad {
namespace {

using tensor::Matrix;
using tensor::Rng;

void expect_close(std::span<const float> got, std::span<const float> want,
                  const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float tol = 1e-4F * (1.0F + std::abs(want[i]));
    ASSERT_NEAR(got[i], want[i], tol) << what << " at flat index " << i;
  }
}

std::vector<float> random_vec(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// Shapes chosen to stress every tile-edge case: unit sizes, sub-tile,
// exact multiples of the 4×NR register tile, one-past multiples, and sizes
// straddling the 256-wide cache blocks.
class GemmEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmEquivalence, AbtMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(101);
  const auto a = random_vec(rng, static_cast<std::size_t>(m * k));
  const auto b = random_vec(rng, static_cast<std::size_t>(n * k));
  std::vector<float> got(static_cast<std::size_t>(m * n));
  auto want = got;
  tensor::gemm_abt(m, n, k, a.data(), k, b.data(), k, got.data(), n);
  tensor::ref::gemm_abt(m, n, k, a.data(), k, b.data(), k, want.data(), n);
  expect_close(got, want, "gemm_abt");
}

TEST_P(GemmEquivalence, AbtStridedWithBiasAndAccumulate) {
  const auto [m, n, k] = GetParam();
  const std::size_t ldb = static_cast<std::size_t>(k) + 5;  // bias at [k]
  Rng rng(103);
  const auto a = random_vec(rng, static_cast<std::size_t>(m * k));
  const auto b = random_vec(rng, static_cast<std::size_t>(n) * ldb);
  auto got = random_vec(rng, static_cast<std::size_t>(m * n));
  auto want = got;

  tensor::gemm_abt(m, n, k, a.data(), k, b.data(), ldb, got.data(), n,
                   /*accumulate=*/false, /*bias=*/b.data() + k, ldb);
  tensor::ref::gemm_abt(m, n, k, a.data(), k, b.data(), ldb, want.data(), n,
                        /*accumulate=*/false, /*bias=*/b.data() + k, ldb);
  expect_close(got, want, "gemm_abt strided+bias");

  tensor::gemm_abt(m, n, k, a.data(), k, b.data(), ldb, got.data(), n,
                   /*accumulate=*/true);
  tensor::ref::gemm_abt(m, n, k, a.data(), k, b.data(), ldb, want.data(), n,
                        /*accumulate=*/true);
  expect_close(got, want, "gemm_abt accumulate");
}

TEST_P(GemmEquivalence, AbMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(107);
  const auto a = random_vec(rng, static_cast<std::size_t>(m * k));
  const auto b = random_vec(rng, static_cast<std::size_t>(k * n));
  std::vector<float> got(static_cast<std::size_t>(m * n));
  auto want = got;
  tensor::gemm_ab(m, n, k, a.data(), k, b.data(), n, got.data(), n);
  tensor::ref::gemm_ab(m, n, k, a.data(), k, b.data(), n, want.data(), n);
  expect_close(got, want, "gemm_ab");
}

TEST_P(GemmEquivalence, AtbMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(109);
  const auto a = random_vec(rng, static_cast<std::size_t>(k * m));
  const auto b = random_vec(rng, static_cast<std::size_t>(k * n));
  auto got = random_vec(rng, static_cast<std::size_t>(m * n));
  auto want = got;  // atb accumulates — start from identical garbage
  tensor::gemm_atb(m, n, k, a.data(), m, b.data(), n, got.data(), n);
  tensor::ref::gemm_atb(m, n, k, a.data(), m, b.data(), n, want.data(), n);
  expect_close(got, want, "gemm_atb");
}

TEST_P(GemmEquivalence, PackedVariantsMatchUnpacked) {
  const auto [m, n, k] = GetParam();
  const std::size_t ldb = static_cast<std::size_t>(k) + 2;
  Rng rng(113);
  const auto a = random_vec(rng, static_cast<std::size_t>(m * k));
  const auto bt = random_vec(rng, static_cast<std::size_t>(n) * ldb);
  const auto b = random_vec(rng, static_cast<std::size_t>(k * n));
  std::vector<float> got(static_cast<std::size_t>(m * n));
  auto want = got;
  std::vector<float> packed(tensor::gemm_packed_size(n, k));

  tensor::gemm_pack_bt(n, k, bt.data(), ldb, packed.data());
  tensor::gemm_abt_packed(m, n, k, a.data(), k, packed.data(), got.data(), n);
  tensor::gemm_abt(m, n, k, a.data(), k, bt.data(), ldb, want.data(), n);
  expect_close(got, want, "gemm_abt_packed");

  tensor::gemm_pack_b(n, k, b.data(), n, packed.data());
  tensor::gemm_ab_packed(m, n, k, a.data(), k, packed.data(), got.data(), n);
  tensor::gemm_ab(m, n, k, a.data(), k, b.data(), n, want.data(), n);
  expect_close(got, want, "gemm_ab_packed");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmEquivalence,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 17, 3},
                      std::tuple{2, 3, 5}, std::tuple{4, 16, 8},
                      std::tuple{5, 15, 7}, std::tuple{7, 31, 33},
                      std::tuple{8, 32, 64}, std::tuple{9, 33, 65},
                      std::tuple{32, 64, 128}, std::tuple{33, 257, 129},
                      std::tuple{64, 300, 260}));

// ---- layer golden models --------------------------------------------------

// Scalar Dense reference: out = x·Wᵀ + b over the in+1-strided rows.
void dense_forward_ref(std::span<const float> w, const Matrix& x,
                       std::size_t in, std::size_t out_dim, Matrix& out) {
  out.resize(x.rows(), out_dim);
  const std::size_t stride = in + 1;
  for (std::size_t b = 0; b < x.rows(); ++b) {
    for (std::size_t o = 0; o < out_dim; ++o) {
      const float* wr = w.data() + o * stride;
      float acc = wr[in];
      for (std::size_t i = 0; i < in; ++i) acc += x(b, i) * wr[i];
      out(b, o) = acc;
    }
  }
}

void dense_backward_ref(std::span<const float> w, const Matrix& x,
                        const Matrix& g_out, std::size_t in,
                        std::size_t out_dim, std::vector<float>& dw,
                        Matrix& g_in) {
  const std::size_t stride = in + 1;
  dw.assign(out_dim * stride, 0.0F);
  for (std::size_t o = 0; o < out_dim; ++o) {
    float* dwo = dw.data() + o * stride;
    for (std::size_t b = 0; b < x.rows(); ++b) {
      const float go = g_out(b, o);
      for (std::size_t i = 0; i < in; ++i) dwo[i] += go * x(b, i);
      dwo[in] += go;
    }
  }
  g_in.resize(x.rows(), in);
  g_in.fill(0.0F);
  for (std::size_t b = 0; b < x.rows(); ++b) {
    for (std::size_t o = 0; o < out_dim; ++o) {
      const float go = g_out(b, o);
      const float* wr = w.data() + o * stride;
      for (std::size_t i = 0; i < in; ++i) g_in(b, i) += go * wr[i];
    }
  }
}

class DenseEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DenseEquivalence, ForwardBackwardMatchReference) {
  const auto [batch, in, out_dim] = GetParam();
  nn::ParameterStore store;
  nn::Dense dense(store, "d", in, out_dim);
  store.finalize();
  Rng rng(211);
  dense.init(store, rng);

  Matrix x(batch, in), g_out(batch, out_dim);
  x.fill_uniform(rng, -1.0F, 1.0F);
  g_out.fill_uniform(rng, -1.0F, 1.0F);

  Matrix out, out_ref;
  dense.forward(store, x, out);
  dense_forward_ref(store.group_params(dense.group()), x, in, out_dim,
                    out_ref);
  expect_close(out.flat(), out_ref.flat(), "dense forward");

  store.zero_grads();
  Matrix g_in;
  dense.backward(store, x, g_out, &g_in);
  std::vector<float> dw_ref;
  Matrix g_in_ref;
  dense_backward_ref(store.group_params(dense.group()), x, g_out, in,
                     out_dim, dw_ref, g_in_ref);
  expect_close(store.group_grads(dense.group()), dw_ref, "dense dW");
  expect_close(g_in.flat(), g_in_ref.flat(), "dense g_in");
}

INSTANTIATE_TEST_SUITE_P(Shapes, DenseEquivalence,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{3, 7, 5},
                                           std::tuple{16, 33, 17},
                                           std::tuple{32, 65, 130}));

// Scalar LSTM reference — the pre-GEMM implementation, kept verbatim as the
// golden model for forward and full BPTT.
struct LstmRef {
  std::size_t in, H, stride;
  std::span<const float> w;

  std::size_t wx_off(std::size_t gate) const { return gate * (in + 1); }
  std::size_t wh_off(std::size_t gate) const {
    return 4 * (in + 1) + gate * H;
  }

  static float sigmoid(float x) { return 1.0F / (1.0F + std::exp(-x)); }

  void forward(const Matrix& x_seq, std::size_t batch, std::size_t seq,
               Matrix& gates, Matrix& c, Matrix& tanh_c, Matrix& h) const {
    gates.resize(batch * seq, 4 * H);
    c.resize(batch * seq, H);
    tanh_c.resize(batch * seq, H);
    h.resize(batch * seq, H);
    for (std::size_t t = 0; t < seq; ++t) {
      for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t idx = t * batch + b;
        const float* xb = x_seq.data() + idx * in;
        const float* hb =
            t == 0 ? nullptr : h.data() + ((t - 1) * batch + b) * H;
        const float* cpb =
            t == 0 ? nullptr : c.data() + ((t - 1) * batch + b) * H;
        for (std::size_t j = 0; j < H; ++j) {
          const float* row = w.data() + j * stride;
          float z[4];
          for (std::size_t gate = 0; gate < 4; ++gate) {
            const float* wx = row + wx_off(gate);
            float acc = wx[in];
            for (std::size_t i = 0; i < in; ++i) acc += xb[i] * wx[i];
            if (hb != nullptr) {
              const float* wh = row + wh_off(gate);
              for (std::size_t k = 0; k < H; ++k) acc += hb[k] * wh[k];
            }
            z[gate] = acc;
          }
          float* g4 = gates.data() + idx * 4 * H;
          g4[j] = sigmoid(z[0]);
          g4[H + j] = sigmoid(z[1]);
          g4[2 * H + j] = std::tanh(z[2]);
          g4[3 * H + j] = sigmoid(z[3]);
          const float c_in = cpb == nullptr ? 0.0F : cpb[j];
          const float c_new = g4[H + j] * c_in + g4[j] * g4[2 * H + j];
          c(idx, j) = c_new;
          tanh_c(idx, j) = std::tanh(c_new);
          h(idx, j) = g4[3 * H + j] * tanh_c(idx, j);
        }
      }
    }
  }

  void backward(const Matrix& x_seq, const Matrix& gates, const Matrix& c,
                const Matrix& tanh_c, const Matrix& h, const Matrix& g_h,
                std::size_t batch, std::size_t seq, std::vector<float>& dw,
                Matrix& g_x) const {
    dw.assign(H * stride, 0.0F);
    g_x.resize(batch * seq, in);
    for (std::size_t b = 0; b < batch; ++b) {
      std::vector<float> dh(H, 0.0F), dc(H, 0.0F), dz(4 * H);
      for (std::size_t t = seq; t-- > 0;) {
        const std::size_t idx = t * batch + b;
        const float* g4 = gates.data() + idx * 4 * H;
        const float* tc = tanh_c.data() + idx * H;
        const float* cpb =
            t == 0 ? nullptr : c.data() + ((t - 1) * batch + b) * H;
        const float* hpb =
            t == 0 ? nullptr : h.data() + ((t - 1) * batch + b) * H;
        const float* gh = g_h.data() + idx * H;
        for (std::size_t j = 0; j < H; ++j) {
          const float gi = g4[j], gf = g4[H + j], gg = g4[2 * H + j],
                      go = g4[3 * H + j];
          const float dh_total = dh[j] + gh[j];
          const float dct = dc[j] + dh_total * go * (1.0F - tc[j] * tc[j]);
          const float c_in = cpb == nullptr ? 0.0F : cpb[j];
          dz[j] = dct * gg * gi * (1.0F - gi);
          dz[H + j] = dct * c_in * gf * (1.0F - gf);
          dz[2 * H + j] = dct * gi * (1.0F - gg * gg);
          dz[3 * H + j] = dh_total * tc[j] * go * (1.0F - go);
          dc[j] = dct * gf;
        }
        const float* xb = x_seq.data() + idx * in;
        float* gxb = g_x.data() + idx * in;
        std::fill(gxb, gxb + in, 0.0F);
        std::fill(dh.begin(), dh.end(), 0.0F);
        for (std::size_t j = 0; j < H; ++j) {
          const float* row = w.data() + j * stride;
          float* drow = dw.data() + j * stride;
          for (std::size_t gate = 0; gate < 4; ++gate) {
            const float dzr = dz[gate * H + j];
            const float* wx = row + wx_off(gate);
            float* dwx = drow + wx_off(gate);
            for (std::size_t i = 0; i < in; ++i) {
              dwx[i] += dzr * xb[i];
              gxb[i] += dzr * wx[i];
            }
            dwx[in] += dzr;
            const float* wh = row + wh_off(gate);
            float* dwh = drow + wh_off(gate);
            for (std::size_t k = 0; k < H; ++k) {
              if (hpb != nullptr) dwh[k] += dzr * hpb[k];
              dh[k] += dzr * wh[k];
            }
          }
        }
      }
    }
  }
};

class LstmEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(LstmEquivalence, ForwardBackwardMatchReference) {
  const auto [batch, seq, in, H] = GetParam();
  nn::ParameterStore store;
  nn::LstmLayer lstm(store, "l", in, H);
  store.finalize();
  Rng rng(307);
  lstm.init(store, rng);

  Matrix x(batch * seq, in), g_h(batch * seq, H);
  x.fill_uniform(rng, -1.0F, 1.0F);
  g_h.fill_uniform(rng, -1.0F, 1.0F);

  nn::LstmLayer::Cache cache;
  lstm.forward(store, x, batch, seq, cache);

  LstmRef ref{static_cast<std::size_t>(in), static_cast<std::size_t>(H),
              lstm.row_len(), store.group_params(lstm.group())};
  Matrix gates_ref, c_ref, tanh_c_ref, h_ref;
  ref.forward(x, batch, seq, gates_ref, c_ref, tanh_c_ref, h_ref);
  expect_close(cache.h.flat(), h_ref.flat(), "lstm h");
  expect_close(cache.c.flat(), c_ref.flat(), "lstm c");
  expect_close(cache.gates.flat(), gates_ref.flat(), "lstm gates");

  store.zero_grads();
  Matrix g_x;
  lstm.backward(store, x, cache, g_h, g_x);
  std::vector<float> dw_ref;
  Matrix g_x_ref;
  ref.backward(x, gates_ref, c_ref, tanh_c_ref, h_ref, g_h, batch, seq,
               dw_ref, g_x_ref);
  expect_close(store.group_grads(lstm.group()), dw_ref, "lstm dW");
  expect_close(g_x.flat(), g_x_ref.flat(), "lstm g_x");
}

INSTANTIATE_TEST_SUITE_P(Shapes, LstmEquivalence,
                         ::testing::Values(std::tuple{1, 1, 1, 1},
                                           std::tuple{2, 3, 5, 7},
                                           std::tuple{4, 6, 16, 16},
                                           std::tuple{3, 5, 19, 33},
                                           std::tuple{8, 4, 32, 64}));

// Scalar RNN reference, same provenance.
struct RnnRef {
  std::size_t in, H, stride;
  std::span<const float> w;

  void forward(const Matrix& x_seq, std::size_t batch, std::size_t seq,
               Matrix& h) const {
    h.resize(batch * seq, H);
    for (std::size_t t = 0; t < seq; ++t) {
      for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t idx = t * batch + b;
        const float* xb = x_seq.data() + idx * in;
        const float* hb =
            t == 0 ? nullptr : h.data() + ((t - 1) * batch + b) * H;
        for (std::size_t j = 0; j < H; ++j) {
          const float* row = w.data() + j * stride;
          float acc = row[in];  // bias
          for (std::size_t i = 0; i < in; ++i) acc += xb[i] * row[i];
          if (hb != nullptr) {
            const float* wh = row + in + 1;
            for (std::size_t k = 0; k < H; ++k) acc += hb[k] * wh[k];
          }
          h(idx, j) = std::tanh(acc);
        }
      }
    }
  }

  void backward(const Matrix& x_seq, const Matrix& h, const Matrix& g_h,
                std::size_t batch, std::size_t seq, std::vector<float>& dw,
                Matrix& g_x) const {
    dw.assign(H * stride, 0.0F);
    g_x.resize(batch * seq, in);
    for (std::size_t b = 0; b < batch; ++b) {
      std::vector<float> dh(H, 0.0F), dz(H);
      for (std::size_t t = seq; t-- > 0;) {
        const std::size_t idx = t * batch + b;
        const float* gh = g_h.data() + idx * H;
        for (std::size_t j = 0; j < H; ++j) {
          dz[j] = (dh[j] + gh[j]) * (1.0F - h(idx, j) * h(idx, j));
        }
        const float* xb = x_seq.data() + idx * in;
        const float* hpb =
            t == 0 ? nullptr : h.data() + ((t - 1) * batch + b) * H;
        float* gxb = g_x.data() + idx * in;
        std::fill(gxb, gxb + in, 0.0F);
        std::fill(dh.begin(), dh.end(), 0.0F);
        for (std::size_t j = 0; j < H; ++j) {
          const float dzj = dz[j];
          const float* row = w.data() + j * stride;
          float* drow = dw.data() + j * stride;
          for (std::size_t i = 0; i < in; ++i) {
            drow[i] += dzj * xb[i];
            gxb[i] += dzj * row[i];
          }
          drow[in] += dzj;
          const float* wh = row + in + 1;
          float* dwh = drow + in + 1;
          for (std::size_t k = 0; k < H; ++k) {
            if (hpb != nullptr) dwh[k] += dzj * hpb[k];
            dh[k] += dzj * wh[k];
          }
        }
      }
    }
  }
};

class RnnEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(RnnEquivalence, ForwardBackwardMatchReference) {
  const auto [batch, seq, in, H] = GetParam();
  nn::ParameterStore store;
  nn::RnnLayer rnn(store, "r", in, H);
  store.finalize();
  Rng rng(401);
  rnn.init(store, rng);

  Matrix x(batch * seq, in), g_h(batch * seq, H);
  x.fill_uniform(rng, -1.0F, 1.0F);
  g_h.fill_uniform(rng, -1.0F, 1.0F);

  nn::RnnLayer::Cache cache;
  rnn.forward(store, x, batch, seq, cache);
  RnnRef ref{static_cast<std::size_t>(in), static_cast<std::size_t>(H),
             rnn.row_len(), store.group_params(rnn.group())};
  Matrix h_ref;
  ref.forward(x, batch, seq, h_ref);
  expect_close(cache.h.flat(), h_ref.flat(), "rnn h");

  store.zero_grads();
  Matrix g_x;
  rnn.backward(store, x, cache, g_h, g_x);
  std::vector<float> dw_ref;
  Matrix g_x_ref;
  ref.backward(x, h_ref, g_h, batch, seq, dw_ref, g_x_ref);
  expect_close(store.group_grads(rnn.group()), dw_ref, "rnn dW");
  expect_close(g_x.flat(), g_x_ref.flat(), "rnn g_x");
}

INSTANTIATE_TEST_SUITE_P(Shapes, RnnEquivalence,
                         ::testing::Values(std::tuple{1, 1, 1, 1},
                                           std::tuple{2, 4, 3, 5},
                                           std::tuple{5, 3, 17, 31},
                                           std::tuple{8, 6, 32, 48}));

// ---- conv2d: im2row-GEMM path vs the retained naive reference -------------

struct ConvCase {
  int batch, in_c, out_c, kernel, h, w, stride, pad;
};

class ConvEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvEquivalence, ForwardBackwardMatchNaiveReference) {
  const ConvCase p = GetParam();
  nn::ParameterStore store;
  nn::Conv2D conv(store, "c", p.in_c, p.out_c, p.kernel, p.h, p.w, p.stride,
                  p.pad);
  store.finalize();
  Rng rng(509);
  conv.init(store, rng);

  Matrix x(p.batch, static_cast<std::size_t>(p.in_c * p.h * p.w));
  x.fill_uniform(rng, -1.0F, 1.0F);

  Matrix out, out_ref;
  conv.forward(store, x, out);
  const auto w = store.group_params(conv.group());
  nn::ref::conv2d_forward(p.in_c, p.out_c, p.kernel, p.h, p.w, p.stride,
                          p.pad, w.data(), x, out_ref);
  ASSERT_EQ(out.rows(), out_ref.rows());
  ASSERT_EQ(out.cols(), out_ref.cols());
  ASSERT_EQ(out.cols(), conv.out_size());
  expect_close(out.flat(), out_ref.flat(), "conv forward");

  Matrix g_out(out.rows(), out.cols());
  g_out.fill_uniform(rng, -1.0F, 1.0F);
  store.zero_grads();
  Matrix g_in;
  conv.backward(store, x, g_out, &g_in);
  std::vector<float> dw_ref(w.size(), 0.0F);
  Matrix g_in_ref;
  nn::ref::conv2d_backward(p.in_c, p.out_c, p.kernel, p.h, p.w, p.stride,
                           p.pad, w.data(), dw_ref.data(), x, g_out,
                           &g_in_ref);
  expect_close(store.group_grads(conv.group()), dw_ref, "conv dW");
  expect_close(g_in.flat(), g_in_ref.flat(), "conv g_in");

  // The g_in == nullptr path must produce identical weight gradients.
  store.zero_grads();
  conv.backward(store, x, g_out, nullptr);
  expect_close(store.group_grads(conv.group()), dw_ref, "conv dW (no g_in)");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvEquivalence,
    ::testing::Values(
        ConvCase{1, 1, 1, 1, 1, 1, 1, 0},    // degenerate 1×1 everything
        ConvCase{2, 2, 3, 3, 6, 7, 1, 0},    // ragged, rectangular input
        ConvCase{3, 1, 8, 5, 12, 12, 1, 0},  // the ConvModel shape, small
        ConvCase{2, 3, 5, 2, 9, 5, 2, 1},    // stride 2 + padding 1
        ConvCase{1, 2, 4, 4, 8, 8, 2, 0},    // even kernel, stride 2
        ConvCase{2, 1, 2, 3, 7, 7, 3, 2},    // stride 3, pad 2 (ragged oh)
        ConvCase{2, 2, 17, 3, 6, 6, 1, 1},   // filters past one register tile
        ConvCase{1, 4, 16, 5, 11, 13, 1, 2}, // multi-channel, heavy padding
        ConvCase{4, 1, 1, 5, 5, 5, 1, 0}));  // kernel == input (1×1 output)

// ---- workspace ------------------------------------------------------------

TEST(Workspace, ScopesReleaseAndChunksAreStable) {
  auto& ws = tensor::Workspace::local();
  float* first = nullptr;
  {
    tensor::Workspace::Scope outer;
    auto a = ws.alloc<float>(100);
    first = a.data();
    a[0] = 1.0F;
    {
      tensor::Workspace::Scope inner;
      // Force growth past one chunk: earlier spans must stay valid.
      auto big = ws.alloc<double>(1 << 16);
      big[0] = 2.0;
      EXPECT_EQ(a.data(), first);
      EXPECT_FLOAT_EQ(a[0], 1.0F);
    }
    // After the inner scope dies, its space is reusable.
    auto b = ws.alloc<float>(50);
    EXPECT_NE(b.data(), nullptr);
  }
  {
    // A fresh scope at the same depth reuses the same chunk memory.
    tensor::Workspace::Scope again;
    auto c = ws.alloc<float>(100);
    EXPECT_EQ(c.data(), first);
  }
}

TEST(Workspace, AllocZeroZeroes) {
  tensor::Workspace::Scope scope;
  auto z = tensor::Workspace::local().alloc_zero<double>(257);
  for (double v : z) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace fedbiad
