// Tests for the transport subsystem: the adversarial frame-parser surface
// (every read split, oversized announcements, crc corruption, interleaved
// garbage, handshake replays), the ring buffer and deadline machinery, the
// protocol codecs, loopback bit-parity of the transport server runtime
// against the in-process engine, deterministic chaos (corruption, abrupt
// disconnects with session resume, dead clients, backpressure, slowloris
// eviction), crash-and-resume from commit-boundary checkpoints, and the
// epoll TCP backend end-to-end over localhost.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../tools/transport_demo.hpp"
#include "common/check.hpp"
#include "fl/scheduler.hpp"
#include "transport/client_runtime.hpp"
#include "transport/epoll.hpp"
#include "transport/frame.hpp"
#include "transport/loopback.hpp"
#include "transport/protocol.hpp"
#include "transport/ring_buffer.hpp"
#include "transport/server_runtime.hpp"
#include "wire/reader.hpp"

namespace fedbiad {
namespace {

using transport::Frame;
using transport::FrameParser;
using transport::FrameType;
using transport::SessionId;

std::vector<std::uint8_t> wire_of(FrameType type,
                                  std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  transport::append_frame(out, type, body);
  return out;
}

std::vector<std::uint8_t> some_body(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> b(n);
  tensor::Rng rng(seed);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.uniform_index(256));
  return b;
}

// --- frame parser: adversarial byte streams -------------------------------

TEST(FrameCodec, RoundTripAllTypes) {
  for (const auto type :
       {FrameType::kHello, FrameType::kWelcome, FrameType::kDispatch,
        FrameType::kUpload, FrameType::kUploadAck, FrameType::kReject,
        FrameType::kFin}) {
    const auto body = some_body(37, static_cast<std::uint64_t>(type));
    const auto wire = wire_of(type, body);
    EXPECT_EQ(wire.size(), transport::frame_wire_size(body.size()));
    FrameParser parser(1 << 20);
    parser.feed(wire);
    Frame f;
    ASSERT_EQ(parser.next(f), FrameParser::Status::kFrame);
    EXPECT_EQ(f.type, type);
    EXPECT_EQ(f.body, body);
    EXPECT_EQ(parser.next(f), FrameParser::Status::kNeedMore);
    EXPECT_EQ(parser.buffered_bytes(), 0u);
  }
}

TEST(FrameCodec, EverySplitPointReassembles) {
  // Three frames back to back, fed in two chunks cut at every offset —
  // including inside the length prefix and inside the crc.
  std::vector<std::uint8_t> stream;
  const auto b1 = some_body(11, 1);
  const auto b2 = some_body(0, 2);
  const auto b3 = some_body(63, 3);
  transport::append_frame(stream, FrameType::kUpload, b1);
  transport::append_frame(stream, FrameType::kFin, b2);
  transport::append_frame(stream, FrameType::kDispatch, b3);
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameParser parser(1 << 20);
    const std::span<const std::uint8_t> all(stream);
    parser.feed(all.first(cut));
    parser.feed(all.subspan(cut));
    Frame f;
    ASSERT_EQ(parser.next(f), FrameParser::Status::kFrame) << cut;
    EXPECT_EQ(f.body, b1) << cut;
    ASSERT_EQ(parser.next(f), FrameParser::Status::kFrame) << cut;
    EXPECT_EQ(f.type, FrameType::kFin) << cut;
    ASSERT_EQ(parser.next(f), FrameParser::Status::kFrame) << cut;
    EXPECT_EQ(f.body, b3) << cut;
    EXPECT_EQ(parser.next(f), FrameParser::Status::kNeedMore) << cut;
  }
}

TEST(FrameCodec, ByteAtATime) {
  const auto body = some_body(29, 4);
  const auto wire = wire_of(FrameType::kWelcome, body);
  FrameParser parser(1 << 20);
  Frame f;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.feed({&wire[i], 1});
    ASSERT_EQ(parser.next(f), FrameParser::Status::kNeedMore) << i;
  }
  parser.feed({&wire.back(), 1});
  ASSERT_EQ(parser.next(f), FrameParser::Status::kFrame);
  EXPECT_EQ(f.body, body);
}

TEST(FrameCodec, OversizedAnnouncementRejectedBeforeBody) {
  // A 4GiB-announcing prefix must fail as soon as the length is readable,
  // without waiting for (or buffering) any body byte.
  FrameParser parser(4096);
  const std::uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  parser.feed(huge);
  Frame f;
  EXPECT_EQ(parser.next(f), FrameParser::Status::kError);
  EXPECT_NE(parser.error().find("exceeds"), std::string::npos);
}

TEST(FrameCodec, BelowMinimumLengthRejected) {
  FrameParser parser(4096);
  const std::uint8_t tiny[4] = {4, 0, 0, 0};  // len 4 < 5: no room for crc
  parser.feed(tiny);
  Frame f;
  EXPECT_EQ(parser.next(f), FrameParser::Status::kError);
  EXPECT_NE(parser.error().find("minimum"), std::string::npos);
}

TEST(FrameCodec, EverySingleByteCorruptionDetected) {
  const auto body = some_body(16, 5);
  const auto wire = wire_of(FrameType::kUpload, body);
  // Skip the length prefix: corrupting it changes the claimed size, which
  // is a different (also rejected) failure mode tested separately.
  for (std::size_t i = 4; i < wire.size(); ++i) {
    auto bad = wire;
    bad[i] ^= 0x01;
    FrameParser parser(1 << 20);
    parser.feed(bad);
    Frame f;
    const auto status = parser.next(f);
    EXPECT_EQ(status, FrameParser::Status::kError) << "byte " << i;
  }
}

TEST(FrameCodec, UnknownTypeRejected) {
  std::vector<std::uint8_t> wire;
  transport::append_frame(wire, static_cast<FrameType>(0x7F), some_body(3, 6));
  FrameParser parser(1 << 20);
  parser.feed(wire);
  Frame f;
  EXPECT_EQ(parser.next(f), FrameParser::Status::kError);
  EXPECT_NE(parser.error().find("unknown frame type"), std::string::npos);
}

TEST(FrameCodec, ErrorIsStickyAndDropsLaterBytes) {
  FrameParser parser(1 << 20);
  const auto good = wire_of(FrameType::kFin, some_body(2, 7));
  auto bad = good;
  bad[5] ^= 0xFF;  // corrupt the type/body region
  parser.feed(bad);
  Frame f;
  ASSERT_EQ(parser.next(f), FrameParser::Status::kError);
  const std::string first_error = parser.error();
  parser.feed(good);  // a pristine frame after poison must not resurrect
  EXPECT_EQ(parser.next(f), FrameParser::Status::kError);
  EXPECT_EQ(parser.error(), first_error);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  EXPECT_TRUE(parser.failed());
}

TEST(FrameCodec, GoodFrameThenInterleavedGarbage) {
  const auto body = some_body(21, 8);
  auto stream = wire_of(FrameType::kUpload, body);
  const auto garbage = some_body(64, 9);
  stream.insert(stream.end(), garbage.begin(), garbage.end());
  FrameParser parser(1 << 20);
  parser.feed(stream);
  Frame f;
  ASSERT_EQ(parser.next(f), FrameParser::Status::kFrame);
  EXPECT_EQ(f.body, body);
  // The garbage tail is an invalid next frame: either a bogus length or a
  // crc mismatch, both fatal.
  EXPECT_EQ(parser.next(f), FrameParser::Status::kError);
}

// --- ring buffer ----------------------------------------------------------

TEST(RingBuffer, AllOrNothingWriteAndWraparound) {
  transport::RingBuffer ring(16);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.write(some_body(17, 1)));  // over capacity: refused whole
  EXPECT_TRUE(ring.empty());
  const auto a = some_body(10, 2);
  ASSERT_TRUE(ring.write(a));
  EXPECT_EQ(ring.size(), 10u);
  EXPECT_FALSE(ring.write(some_body(7, 3)));  // 10 + 7 > 16
  ring.consume(6);
  const auto b = some_body(7, 4);
  ASSERT_TRUE(ring.write(b));  // wraps
  std::vector<std::uint8_t> drained;
  while (!ring.empty()) {
    const auto run = ring.peek();
    drained.insert(drained.end(), run.begin(), run.end());
    ring.consume(run.size());
  }
  std::vector<std::uint8_t> want(a.begin() + 6, a.end());
  want.insert(want.end(), b.begin(), b.end());
  EXPECT_EQ(drained, want);
  EXPECT_EQ(ring.free_space(), 16u);
}

// --- scheduler adapter + deadline timers ----------------------------------

TEST(Scheduler, NextTimeSkipsCancelledAndAdvanceToFiresInOrder) {
  fl::EventScheduler sched;
  std::vector<int> fired;
  const auto a = sched.schedule_at(1.0, [&] { fired.push_back(1); });
  sched.schedule_at(2.0, [&] { fired.push_back(2); });
  sched.schedule_at(3.0, [&] { fired.push_back(3); });
  EXPECT_EQ(sched.next_time(), 1.0);
  sched.cancel(a);
  EXPECT_EQ(sched.next_time(), 2.0);  // cancelled top lazily dropped
  sched.advance_to(2.5);
  EXPECT_EQ(sched.now(), 2.5);
  EXPECT_EQ(fired, std::vector<int>({2}));
  sched.advance_to(3.0);  // boundary inclusive
  EXPECT_EQ(fired, std::vector<int>({2, 3}));
  EXPECT_EQ(sched.next_time(), std::numeric_limits<double>::infinity());
  EXPECT_THROW(sched.advance_to(2.0), CheckError);  // time cannot go back
}

TEST(DeadlineTimer, ArmRearmsAndCancelSuppresses) {
  fl::EventScheduler sched;
  int fired = 0;
  transport::DeadlineTimer timer(sched, 5.0);
  timer.arm([&] { ++fired; });
  timer.arm([&] { ++fired; });  // re-arm replaces, never stacks
  EXPECT_TRUE(timer.armed());
  sched.advance_to(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
  timer.arm([&] { ++fired; });
  timer.cancel();
  sched.advance_to(20.0);
  EXPECT_EQ(fired, 1);
}

// --- protocol codecs ------------------------------------------------------

TEST(Protocol, RoundTripsEveryMessage) {
  transport::HelloMsg hello{.client_id = 3,
                            .session_token = 0xDEADBEEF,
                            .payload_kind = 2,
                            .payload_aux = 9};
  const auto h = transport::decode_hello(transport::encode(hello));
  EXPECT_EQ(h.client_id, 3u);
  EXPECT_EQ(h.session_token, 0xDEADBEEFu);
  EXPECT_EQ(h.payload_kind, 2u);
  EXPECT_EQ(h.payload_aux, 9u);

  transport::DispatchMsg dispatch{.dispatch_index = 41,
                                  .round = 7,
                                  .slot = 2,
                                  .model_version = 6,
                                  .rng_stream = 0x10029,
                                  .broadcast = some_body(100, 10)};
  const auto d = transport::decode_dispatch(transport::encode(dispatch));
  EXPECT_EQ(d.dispatch_index, 41u);
  EXPECT_EQ(d.rng_stream, 0x10029u);
  EXPECT_EQ(d.broadcast, dispatch.broadcast);

  transport::UploadMsg upload{.dispatch_index = 41,
                              .samples = 17,
                              .is_update = 1,
                              .train_seconds = 0.25,
                              .mean_loss = 1.5,
                              .last_loss = 1.25,
                              .payload = some_body(57, 11)};
  const auto u = transport::decode_upload(transport::encode(upload));
  EXPECT_EQ(u.samples, 17u);
  EXPECT_EQ(u.mean_loss, 1.5);
  EXPECT_EQ(u.payload, upload.payload);

  transport::RejectMsg reject{
      .dispatch_index = 41, .retry = 1, .reason = "crc mismatch"};
  const auto j = transport::decode_reject(transport::encode(reject));
  EXPECT_EQ(j.retry, 1u);
  EXPECT_EQ(j.reason, "crc mismatch");

  const auto w = transport::decode_welcome(
      transport::encode(transport::WelcomeMsg{.session_token = 5,
                                              .version = 2,
                                              .resumed = 1}));
  EXPECT_EQ(w.session_token, 5u);
  EXPECT_EQ(w.resumed, 1u);
  const auto a = transport::decode_upload_ack(
      transport::encode(transport::UploadAckMsg{.dispatch_index = 41}));
  EXPECT_EQ(a.dispatch_index, 41u);
  const auto f =
      transport::decode_fin(transport::encode(transport::FinMsg{.rounds = 9}));
  EXPECT_EQ(f.rounds, 9u);
}

TEST(Protocol, TruncationAtEveryLengthRejected) {
  transport::UploadMsg upload{.dispatch_index = 1,
                              .samples = 2,
                              .is_update = 0,
                              .train_seconds = 0.1,
                              .mean_loss = 2.0,
                              .last_loss = 1.9,
                              .payload = some_body(33, 12)};
  const auto full = transport::encode(upload);
  for (std::size_t n = 0; n < full.size(); ++n) {
    const std::span<const std::uint8_t> cut(full.data(), n);
    EXPECT_THROW(transport::decode_upload(cut), wire::DecodeError) << n;
  }
  EXPECT_NO_THROW(transport::decode_upload(full));
  // Trailing junk is as fatal as truncation.
  auto padded = full;
  padded.push_back(0);
  EXPECT_THROW(transport::decode_upload(padded), wire::DecodeError);
}

TEST(Protocol, LyingByteRunLengthRejected) {
  transport::DispatchMsg dispatch{.dispatch_index = 1,
                                  .round = 1,
                                  .slot = 0,
                                  .model_version = 0,
                                  .rng_stream = 1,
                                  .broadcast = some_body(20, 13)};
  auto bytes = transport::encode(dispatch);
  // The varint byte-run length sits right after five u64s; inflate it so
  // it claims more bytes than remain.
  bytes[40] = 0xFF;
  bytes[41] |= 0x01;
  EXPECT_THROW(transport::decode_dispatch(bytes), wire::DecodeError);
}

// --- loopback: runtimes, parity, chaos ------------------------------------

using ClientTweak =
    std::function<void(transport::TransportClientConfig&, std::size_t)>;

struct LoopbackRun {
  tools::DemoWorkload w;
  transport::LoopbackTransport net{transport::TransportLimits{}};
  std::unique_ptr<transport::ServerRuntime> server;
  std::vector<std::unique_ptr<transport::LoopbackTransport::Endpoint>> ends;
  std::vector<std::unique_ptr<transport::ClientRuntime>> clients;

  explicit LoopbackRun(const std::string& method,
                       transport::TransportServerConfig scfg = {},
                       std::size_t skip_client = SIZE_MAX,
                       const ClientTweak& tweak = {})
      : w(tools::make_demo_workload(method, /*smoke=*/true)) {
    scfg.base = w.sim;
    scfg.scenario_name = "loopback";
    server = std::make_unique<transport::ServerRuntime>(
        scfg, net, w.factory, w.test, w.partition,
        tools::make_demo_strategy(method));
    for (std::size_t c = 0; c < w.partition.size(); ++c) {
      if (w.partition[c].empty() || c == skip_client) continue;
      transport::TransportClientConfig ccfg;
      ccfg.client_id = c;
      ccfg.base = w.sim;
      ccfg.payload_kind = w.payload_kind;
      ccfg.reconnect_interval_seconds = 0.0;  // loopback dials instantly
      ccfg.reconnect_timeout_seconds = 60.0;
      if (tweak) tweak(ccfg, c);
      ends.push_back(std::make_unique<transport::LoopbackTransport::Endpoint>(
          net, c));
      clients.push_back(std::make_unique<transport::ClientRuntime>(
          ccfg, *ends.back(), w.factory, w.train, w.partition[c],
          tools::make_demo_strategy(method)));
    }
  }

  /// Drives everything to completion. advance_dt > 0 moves virtual time
  /// each iteration (deadline tests need it).
  transport::TransportServerResult drive(double advance_dt = 0.0,
                                         std::size_t max_iters = 10000) {
    server->start();
    for (auto& c : clients) c->start();
    std::size_t guard = 0;
    while (!server->done() && ++guard < max_iters) {
      net.step(0.0);
      for (auto& c : clients) c->pump(0.0);
      if (advance_dt > 0.0) net.advance_time(advance_dt);
    }
    EXPECT_LT(guard, max_iters) << "loopback run did not converge";
    return server->finish();
  }
};

void expect_conserved(const transport::TransportServerResult& r) {
  EXPECT_TRUE(r.conserved())
      << "dispatched=" << r.sim.total_dispatched
      << " committed=" << r.sim.total_committed
      << " abandoned=" << r.sim.total_abandoned
      << " rejected=" << r.sim.total_rejected
      << " buffered=" << r.sim.final_buffered
      << " in_flight=" << r.sim.final_in_flight;
}

TEST(LoopbackParity, FedAvgBitIdenticalToEngine) {
  const auto w = tools::make_demo_workload("fedavg", true);
  const std::string want =
      tools::trajectory_text(tools::reference_run(w, "fedavg"));
  LoopbackRun run("fedavg");
  const auto result = run.drive();
  expect_conserved(result);
  EXPECT_EQ(tools::trajectory_text(result.sim), want);
  EXPECT_EQ(result.sessions_opened, 8u);
  EXPECT_EQ(result.sessions_resumed, 0u);
  for (auto& c : run.clients) EXPECT_TRUE(c->finished());
}

TEST(LoopbackParity, FedBiadBitIdenticalToEngine) {
  const auto w = tools::make_demo_workload("fedbiad", true);
  const std::string want =
      tools::trajectory_text(tools::reference_run(w, "fedbiad"));
  LoopbackRun run("fedbiad");
  const auto result = run.drive();
  expect_conserved(result);
  EXPECT_EQ(tools::trajectory_text(result.sim), want);
}

TEST(LoopbackChaos, AbruptDisconnectResumesAndStaysBitIdentical) {
  // Client 2 kills its connection right after its first upload leaves the
  // socket — before any ack. It must reconnect, resume its session, re-send
  // from the outcome cache, and the server-side dedup/commit path must keep
  // the trajectory byte-identical to the undisturbed reference.
  const auto w = tools::make_demo_workload("fedbiad", true);
  const std::string want =
      tools::trajectory_text(tools::reference_run(w, "fedbiad"));
  LoopbackRun run("fedbiad", {}, SIZE_MAX,
                  [](transport::TransportClientConfig& cfg, std::size_t c) {
                    if (c == 2) cfg.drop_connection_after_uploads = 1;
                  });
  const auto result = run.drive();
  expect_conserved(result);
  EXPECT_EQ(tools::trajectory_text(result.sim), want);
  EXPECT_GE(result.sessions_resumed, 1u);
  for (std::size_t i = 0; i < run.clients.size(); ++i) {
    EXPECT_TRUE(run.clients[i]->finished()) << i;
    // Exactly-once training: resends come from the cache, so uploads can
    // exceed trainings but never the other way round.
    EXPECT_LE(run.clients[i]->trainings_run(), run.clients[i]->uploads_sent())
        << i;
  }
  EXPECT_GE(run.clients[2]->reconnects(), 1u);
}

TEST(LoopbackChaos, CorruptUploadsRetryThenTerminallyReject) {
  // Client 1 corrupts every upload attempt (p = 1): each delivery burns one
  // attempt, and after max_upload_attempts the dispatch is terminally
  // rejected — the barrier wave must still complete via the rejection path
  // and the conservation law must hold exactly.
  transport::TransportServerConfig scfg;
  scfg.max_upload_attempts = 2;
  LoopbackRun run("fedavg", scfg, SIZE_MAX,
                  [](transport::TransportClientConfig& cfg, std::size_t c) {
                    if (c == 1) cfg.corrupt_probability = 1.0;
                  });
  const auto result = run.drive();
  expect_conserved(result);
  // Client 1 is selected at least once over 3 rounds of 4-of-8 selection
  // with seed 42; every one of its dispatches must terminally reject.
  EXPECT_GT(result.sim.total_rejected, 0u);
  EXPECT_GE(result.sim.total_rejected_deliveries,
            result.sim.total_rejected * 2);  // both attempts burned
  EXPECT_GT(result.sim.total_rejected_bytes, 0u);
  EXPECT_EQ(result.sim.total_committed + result.sim.total_rejected,
            result.sim.total_dispatched);
}

TEST(LoopbackChaos, DeadClientAbandonedAtDispatchDeadline) {
  // Client 3 never connects. With a dispatch deadline configured its
  // dispatches are abandoned (the churn path), the wave completes with the
  // survivors, and conservation charges the losses to `abandoned`.
  transport::TransportServerConfig scfg;
  scfg.dispatch_deadline_seconds = 5.0;
  LoopbackRun run("fedavg", scfg, /*skip_client=*/3);
  const auto result = run.drive(/*advance_dt=*/1.0);
  expect_conserved(result);
  EXPECT_GT(result.sim.total_abandoned, 0u);
  EXPECT_EQ(result.sim.total_committed + result.sim.total_abandoned,
            result.sim.total_dispatched);
  EXPECT_EQ(result.sim.rounds.size(), run.w.sim.rounds);
  for (auto& c : run.clients) EXPECT_TRUE(c->finished());
}

// A raw scripted peer for protocol-violation tests: records frames and
// closes, sends whatever the test scripts.
struct ScriptedPeer : transport::ClientTransport::Handler {
  transport::LoopbackTransport::Endpoint endpoint;
  std::vector<Frame> frames;
  std::vector<std::string> closes;
  explicit ScriptedPeer(transport::LoopbackTransport& net, std::uint64_t id)
      : endpoint(net, id) {
    endpoint.set_handler(this);
  }
  void on_frame(Frame&& f) override { frames.push_back(std::move(f)); }
  void on_close(const std::string& reason) override {
    closes.push_back(reason);
  }
  bool hello(std::uint64_t client, std::uint64_t token = 0) {
    return endpoint.send(
        FrameType::kHello,
        transport::encode(transport::HelloMsg{.client_id = client,
                                              .session_token = token,
                                              .payload_kind = 0,
                                              .payload_aux = 0}));
  }
};

TEST(LoopbackChaos, HandshakeReplayAndUnknownClientClose) {
  LoopbackRun run("fedavg");
  run.server->start();

  ScriptedPeer replayer(run.net, 100);
  ASSERT_TRUE(replayer.endpoint.connect());
  ASSERT_TRUE(replayer.hello(0));
  run.net.step(0.0);
  ASSERT_TRUE(replayer.endpoint.connected());
  ASSERT_TRUE(replayer.hello(0));  // second Hello on a bound session
  run.net.step(0.0);
  ASSERT_EQ(replayer.closes.size(), 1u);
  EXPECT_NE(replayer.closes[0].find("handshake replay"), std::string::npos);

  ScriptedPeer stranger(run.net, 101);
  ASSERT_TRUE(stranger.endpoint.connect());
  ASSERT_TRUE(stranger.hello(4242));  // not a populated client id
  run.net.step(0.0);
  ASSERT_EQ(stranger.closes.size(), 1u);
  EXPECT_NE(stranger.closes[0].find("unknown client"), std::string::npos);

  ScriptedPeer eager(run.net, 102);
  ASSERT_TRUE(eager.endpoint.connect());
  ASSERT_TRUE(eager.endpoint.send(
      FrameType::kUpload,
      transport::encode(transport::UploadMsg{.dispatch_index = 0})));
  run.net.step(0.0);
  ASSERT_EQ(eager.closes.size(), 1u);
  EXPECT_NE(eager.closes[0].find("handshake"), std::string::npos);

  ScriptedPeer garbled(run.net, 103);
  ASSERT_TRUE(garbled.endpoint.connect());
  ASSERT_TRUE(garbled.endpoint.send(FrameType::kHello, some_body(3, 14)));
  run.net.step(0.0);
  ASSERT_EQ(garbled.closes.size(), 1u);
  EXPECT_NE(garbled.closes[0].find("malformed hello"), std::string::npos);
}

TEST(LoopbackChaos, SlowlorisReadDeadlineEvicts) {
  LoopbackRun run("fedavg");
  run.server->start();
  ScriptedPeer silent(run.net, 104);
  ASSERT_TRUE(silent.endpoint.connect());  // connects, never says Hello
  run.net.step(0.0);
  run.net.advance_time(transport::TransportLimits{}.read_deadline_seconds +
                       1.0);
  ASSERT_EQ(silent.closes.size(), 1u);
  EXPECT_NE(silent.closes[0].find("read deadline exceeded"),
            std::string::npos);
}

TEST(LoopbackChaos, BackpressureRefusesParksAndDrains) {
  // Transport-level backpressure: shrink one session's send ring so a
  // server send refuses, then watch on_drain fire once the stalled reader
  // resumes. Uses a scripted handler on the server side.
  struct RecordingHandler : transport::ServerTransport::Handler {
    std::vector<SessionId> opened, drained;
    std::vector<std::pair<SessionId, std::string>> closed;
    void on_open(SessionId s) override { opened.push_back(s); }
    void on_frame(SessionId, Frame&&) override {}
    void on_close(SessionId s, const std::string& r) override {
      closed.emplace_back(s, r);
    }
    void on_drain(SessionId s) override { drained.push_back(s); }
  };
  // Short write deadline so the eviction half below can advance past it
  // without also tripping the (longer) read deadline.
  transport::TransportLimits limits;
  limits.write_deadline_seconds = 5.0;
  transport::LoopbackTransport net{limits};
  RecordingHandler handler;
  net.set_handler(&handler);
  ScriptedPeer peer(net, 105);
  ASSERT_TRUE(peer.endpoint.connect());
  ASSERT_EQ(handler.opened.size(), 1u);
  const SessionId session = handler.opened[0];

  peer.endpoint.pause();  // stalled reader: ring can only fill
  const auto body = some_body(100, 15);
  const std::size_t wire = transport::frame_wire_size(body.size());
  net.set_session_send_capacity(session, 2 * wire);
  ASSERT_TRUE(net.send(session, FrameType::kDispatch, body));
  ASSERT_TRUE(net.send(session, FrameType::kDispatch, body));
  EXPECT_FALSE(net.send(session, FrameType::kDispatch, body));  // full
  EXPECT_EQ(net.send_space(session), 0u);
  EXPECT_TRUE(handler.drained.empty());

  peer.endpoint.unpause();  // reader resumes; ring drains fully
  net.step(0.0);
  ASSERT_EQ(handler.drained.size(), 1u);
  EXPECT_EQ(handler.drained[0], session);
  EXPECT_EQ(peer.frames.size(), 2u);
  ASSERT_TRUE(net.send(session, FrameType::kDispatch, body));  // usable again

  // And the eviction half: refuse again, never drain, advance past the
  // write deadline.
  peer.endpoint.pause();
  ASSERT_TRUE(net.send(session, FrameType::kDispatch, body));
  EXPECT_FALSE(net.send(session, FrameType::kDispatch, body));
  net.advance_time(limits.write_deadline_seconds + 1.0);
  ASSERT_EQ(handler.closed.size(), 1u);
  EXPECT_NE(handler.closed[0].second.find("write deadline exceeded"),
            std::string::npos);
}

TEST(LoopbackChaos, CrashAndResumeReproducesTrajectory) {
  // Kill the server (destroy runtime + transport) mid-run, after a
  // commit-boundary checkpoint, bring up a fresh server with resume and
  // fresh clients (their caches are cold — retraining is deterministic),
  // and require the final trajectory byte-identical to an uninterrupted
  // run of the same configuration.
  //
  // The loopback delivers synchronously, so an all-alive fleet cascades
  // through every round inside one step() — there is no "mid-run" to crash
  // in. A dead client plus a dispatch deadline paces the run instead: each
  // wave containing the dead client stalls until advance_time() fires the
  // abandon, so rounds commit one deadline at a time and the crash lands
  // between commits.
  constexpr std::size_t kDead = 3;
  transport::TransportServerConfig chaos;
  chaos.dispatch_deadline_seconds = 5.0;

  LoopbackRun uninterrupted("fedbiad", chaos, kDead);
  const auto full = uninterrupted.drive(/*advance_dt=*/1.0);
  expect_conserved(full);
  const std::string want = tools::trajectory_text(full.sim);

  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "transport_ckpt")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::size_t crash_round = 0;
  {
    transport::TransportServerConfig scfg = chaos;
    scfg.checkpoint.directory = dir;
    scfg.checkpoint.every_rounds = 1;
    LoopbackRun run("fedbiad", scfg, kDead);
    run.server->start();
    for (auto& c : run.clients) c->start();
    std::size_t guard = 0;
    while (run.server->rounds_completed() < 1 && ++guard < 10000) {
      run.net.step(0.0);
      for (auto& c : run.clients) c->pump(0.0);
      run.net.advance_time(1.0);
    }
    crash_round = run.server->rounds_completed();
    ASSERT_GE(crash_round, 1u);
    ASSERT_LT(crash_round, run.w.sim.rounds) << "nothing left to resume";
    // Scope exit = SIGKILL: no finish(), no Fin, sessions just vanish.
  }

  transport::TransportServerConfig scfg = chaos;
  scfg.checkpoint.directory = dir;
  scfg.checkpoint.every_rounds = 1;
  scfg.checkpoint.resume = true;
  LoopbackRun resumed("fedbiad", scfg, kDead);
  const auto result = resumed.drive(/*advance_dt=*/1.0);
  expect_conserved(result);
  EXPECT_EQ(result.sim.rounds.size(), resumed.w.sim.rounds);
  EXPECT_EQ(tools::trajectory_text(result.sim), want);
  std::filesystem::remove_all(dir);
}

// --- decode-on-arrival worker pool ----------------------------------------

TEST(DecodeWorkers, TrajectoryBitIdenticalAcrossWorkerCounts) {
  // The tentpole contract: moving verify+decode onto 1, 2, or 4 pool
  // workers must not move a single byte of the trajectory relative to the
  // single-threaded engine, in either aggregation style.
  for (const char* method : {"fedavg", "fedbiad"}) {
    const auto w = tools::make_demo_workload(method, true);
    const std::string want =
        tools::trajectory_text(tools::reference_run(w, method));
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      transport::TransportServerConfig scfg;
      scfg.decode_workers = workers;
      LoopbackRun run(method, scfg);
      const auto result = run.drive();
      expect_conserved(result);
      EXPECT_EQ(tools::trajectory_text(result.sim), want)
          << method << " with " << workers << " decode workers";
      for (auto& c : run.clients) EXPECT_TRUE(c->finished());
    }
  }
}

TEST(DecodeWorkers, FullQueueParksThenDrainsBitIdentically) {
  // One worker and a depth-1 queue: within a single loopback drain several
  // uploads land back to back, so all but the first must park — and the
  // scheduler tick must resubmit them in arrival order. The trajectory
  // still may not drift from the inline reference.
  const auto w = tools::make_demo_workload("fedavg", true);
  const std::string want =
      tools::trajectory_text(tools::reference_run(w, "fedavg"));
  transport::TransportServerConfig scfg;
  scfg.decode_workers = 1;
  scfg.decode_queue_depth = 1;
  LoopbackRun run("fedavg", scfg);
  const auto result = run.drive();
  expect_conserved(result);
  EXPECT_EQ(tools::trajectory_text(result.sim), want);
  EXPECT_GT(result.decode_parked, 0u) << "depth-1 queue never filled";
  EXPECT_EQ(result.decode_shed, 0u);
}

TEST(DecodeWorkers, ParkedOverflowShedsSessionsAndStillConserves) {
  // max_parked_uploads = 0 turns every park into a shed: the submitting
  // session is closed with a rejected-delivery charge and the client must
  // reconnect and resend from its cache. The run still completes every
  // round and the conservation ledger still balances exactly.
  transport::TransportServerConfig scfg;
  scfg.decode_workers = 1;
  scfg.decode_queue_depth = 1;
  scfg.max_parked_uploads = 0;
  LoopbackRun run("fedavg", scfg);
  const auto result = run.drive();
  expect_conserved(result);
  EXPECT_GT(result.decode_shed, 0u);
  EXPECT_GT(result.sim.total_rejected_deliveries, 0u);
  EXPECT_GT(result.sim.total_rejected_bytes, 0u);
  EXPECT_EQ(result.sim.rounds.size(), run.w.sim.rounds);
  for (auto& c : run.clients) EXPECT_TRUE(c->finished());
}

TEST(DecodeWorkers, CorruptUploadsChargeAndRetryFromTheWorkerPath) {
  // The worker path must reproduce the inline rejection machinery exactly:
  // a corrupt payload detected on a pool worker still burns a delivery
  // attempt, still charges the rejected ledgers, and still Rejects with
  // retry until max_upload_attempts terminally rejects the dispatch.
  transport::TransportServerConfig scfg;
  scfg.max_upload_attempts = 2;
  scfg.decode_workers = 2;
  LoopbackRun run("fedavg", scfg, SIZE_MAX,
                  [](transport::TransportClientConfig& cfg, std::size_t c) {
                    if (c == 1) cfg.corrupt_probability = 1.0;
                  });
  const auto result = run.drive();
  expect_conserved(result);
  EXPECT_GT(result.sim.total_rejected, 0u);
  EXPECT_GE(result.sim.total_rejected_deliveries,
            result.sim.total_rejected * 2);
  EXPECT_GT(result.sim.total_rejected_bytes, 0u);
  EXPECT_EQ(result.sim.total_committed + result.sim.total_rejected,
            result.sim.total_dispatched);
}

TEST(DecodeWorkers, ResendAfterDisconnectDedupsAtFinishTime) {
  // Worker-vs-transport interleaving: client 2 drops right after its first
  // upload, reconnects, and resends from its cache — so the duplicate can
  // already be sitting decoded in the queue when the original finishes.
  // The dedup check runs at finish time in arrival order, so the duplicate
  // is charged and Ack'd, never aggregated, and the trajectory stays
  // byte-identical to the undisturbed reference.
  const auto w = tools::make_demo_workload("fedbiad", true);
  const std::string want =
      tools::trajectory_text(tools::reference_run(w, "fedbiad"));
  transport::TransportServerConfig scfg;
  scfg.decode_workers = 2;
  LoopbackRun run("fedbiad", scfg, SIZE_MAX,
                  [](transport::TransportClientConfig& cfg, std::size_t c) {
                    if (c == 2) cfg.drop_connection_after_uploads = 1;
                  });
  const auto result = run.drive();
  expect_conserved(result);
  EXPECT_EQ(tools::trajectory_text(result.sim), want);
  EXPECT_GE(result.sessions_resumed, 1u);
}

TEST(DecodeWorkers, DeadlineAbandonsMatchInlineUnderWorkers) {
  // Deadline coupling: decodes in flight belong to the past, so the tick
  // hook must finish them before a later virtual-time deadline can abandon
  // their dispatches. Same dead client, same deadline — the worker run
  // must land on the identical trajectory the inline run produces.
  transport::TransportServerConfig scfg;
  scfg.dispatch_deadline_seconds = 5.0;
  LoopbackRun inline_run("fedavg", scfg, /*skip_client=*/3);
  const auto inline_result = inline_run.drive(/*advance_dt=*/1.0);
  expect_conserved(inline_result);
  ASSERT_GT(inline_result.sim.total_abandoned, 0u);

  scfg.decode_workers = 2;
  LoopbackRun worker_run("fedavg", scfg, /*skip_client=*/3);
  const auto result = worker_run.drive(/*advance_dt=*/1.0);
  expect_conserved(result);
  EXPECT_EQ(tools::trajectory_text(result.sim),
            tools::trajectory_text(inline_result.sim));
  EXPECT_EQ(result.sim.total_abandoned, inline_result.sim.total_abandoned);
}

// --- epoll TCP backend ----------------------------------------------------

TEST(Tcp, EndToEndMatchesEngineAcrossThreads) {
  const auto w = tools::make_demo_workload("fedavg", true);
  const std::string want =
      tools::trajectory_text(tools::reference_run(w, "fedavg"));

  transport::TransportServerConfig scfg;
  scfg.base = w.sim;
  scfg.scenario_name = "tcp";
  transport::EpollServerTransport net({}, 0);
  const std::uint16_t port = net.port();
  transport::ServerRuntime server(scfg, net, w.factory, w.test, w.partition,
                                  tools::make_demo_strategy("fedavg"));

  std::vector<std::thread> threads;
  std::vector<int> status(w.partition.size(), -1);
  for (std::size_t c = 0; c < w.partition.size(); ++c) {
    if (w.partition[c].empty()) continue;
    threads.emplace_back([&, c] {
      transport::TransportClientConfig ccfg;
      ccfg.client_id = c;
      ccfg.base = w.sim;
      ccfg.payload_kind = w.payload_kind;
      ccfg.reconnect_timeout_seconds = 30.0;
      transport::TcpClientTransport tcp("127.0.0.1", port);
      transport::ClientRuntime runtime(ccfg, tcp, w.factory, w.train,
                                       w.partition[c],
                                       tools::make_demo_strategy("fedavg"));
      status[c] = runtime.run() ? 0 : 1;
    });
  }
  const auto result = server.run();
  for (auto& t : threads) t.join();
  expect_conserved(result);
  EXPECT_EQ(tools::trajectory_text(result.sim), want);
  for (std::size_t c = 0; c < w.partition.size(); ++c) {
    if (!w.partition[c].empty()) EXPECT_EQ(status[c], 0) << "client " << c;
  }
}

TEST(Tcp, GarbageAndOversizedStreamsAreClosed) {
  struct RecordingHandler : transport::ServerTransport::Handler {
    std::vector<SessionId> opened;
    std::vector<std::pair<SessionId, std::string>> closed;
    void on_open(SessionId s) override { opened.push_back(s); }
    void on_frame(SessionId, Frame&&) override {}
    void on_close(SessionId s, const std::string& r) override {
      closed.emplace_back(s, r);
    }
    void on_drain(SessionId) override {}
  };
  transport::EpollServerTransport net({}, 0);
  RecordingHandler handler;
  net.set_handler(&handler);

  auto dial = [&net] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(net.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    return fd;
  };

  // Raw garbage: not even a plausible frame.
  const int garbage_fd = dial();
  const auto junk = some_body(64, 16);
  ASSERT_EQ(::send(garbage_fd, junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  std::size_t guard = 0;
  while (handler.closed.size() < 1 && ++guard < 200) net.step(0.05);
  ASSERT_EQ(handler.closed.size(), 1u);
  EXPECT_NE(handler.closed[0].second.find("framing error"), std::string::npos);
  ::close(garbage_fd);

  // A 4GiB length announcement: rejected at the prefix.
  const int huge_fd = dial();
  const std::uint8_t huge[5] = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  ASSERT_EQ(::send(huge_fd, huge, sizeof huge, 0),
            static_cast<ssize_t>(sizeof huge));
  guard = 0;
  while (handler.closed.size() < 2 && ++guard < 200) net.step(0.05);
  ASSERT_EQ(handler.closed.size(), 2u);
  EXPECT_NE(handler.closed[1].second.find("framing error"), std::string::npos);
  ::close(huge_fd);
}

}  // namespace
}  // namespace fedbiad
