// Unit tests for the tensor substrate: Matrix, kernels, and the RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/check.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace fedbiad::tensor {
namespace {

TEST(Matrix, ConstructsWithFill) {
  Matrix m(3, 4, 2.5F);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(m(r, c), 2.5F);
    }
  }
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, RowViewAliasesStorage) {
  Matrix m(2, 3);
  m.row(1)[2] = 7.0F;
  EXPECT_FLOAT_EQ(m(1, 2), 7.0F);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), fedbiad::CheckError);
  EXPECT_THROW(m.at(0, 2), fedbiad::CheckError);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, ResizeChangesShape) {
  Matrix m(2, 2, 1.0F);
  m.resize(4, 5);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.size(), 20u);
}

TEST(Matrix, FillNormalHasRoughMoments) {
  Rng rng(7);
  Matrix m(100, 100);
  m.fill_normal(rng, 1.0F, 2.0F);
  double mean = 0.0;
  for (float v : m.flat()) mean += v;
  mean /= static_cast<double>(m.size());
  double var = 0.0;
  for (float v : m.flat()) var += (v - mean) * (v - mean);
  var /= static_cast<double>(m.size());
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Ops, AxpyAddsScaled) {
  std::vector<float> x{1.0F, 2.0F, 3.0F};
  std::vector<float> y{10.0F, 20.0F, 30.0F};
  axpy(2.0F, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0F);
  EXPECT_FLOAT_EQ(y[1], 24.0F);
  EXPECT_FLOAT_EQ(y[2], 36.0F);
}

TEST(Ops, DotAndNorm) {
  std::vector<float> a{1.0F, 2.0F, 2.0F};
  std::vector<float> b{3.0F, 0.0F, -1.0F};
  EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(squared_norm(a), 9.0);
  EXPECT_DOUBLE_EQ(sum(a), 5.0);
}

TEST(Ops, ScaleAndFill) {
  std::vector<float> x{1.0F, -2.0F};
  scale(x, -3.0F);
  EXPECT_FLOAT_EQ(x[0], -3.0F);
  EXPECT_FLOAT_EQ(x[1], 6.0F);
  fill(std::span<float>(x), 0.5F);
  EXPECT_FLOAT_EQ(x[0], 0.5F);
}

// Reference naive GEMM for checking the parallel kernels.
Matrix naive_xwt(const Matrix& x, const Matrix& w) {
  Matrix out(x.rows(), w.rows());
  for (std::size_t b = 0; b < x.rows(); ++b) {
    for (std::size_t o = 0; o < w.rows(); ++o) {
      float acc = 0.0F;
      for (std::size_t i = 0; i < x.cols(); ++i) acc += x(b, i) * w(o, i);
      out(b, o) = acc;
    }
  }
  return out;
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatmulXwtMatchesNaive) {
  const auto [batch, in, out_dim] = GetParam();
  Rng rng(11);
  Matrix x(batch, in);
  Matrix w(out_dim, in);
  x.fill_uniform(rng, -1.0F, 1.0F);
  w.fill_uniform(rng, -1.0F, 1.0F);
  Matrix got;
  matmul_xwt(x, w, got);
  const Matrix want = naive_xwt(x, w);
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.flat()[i], want.flat()[i], 1e-4F);
  }
}

TEST_P(GemmShapes, BackwardKernelsAreAdjoint) {
  // <g, x·Wᵀ> must equal <gᵀ·x, W> and <g·W, x> — the defining adjoint
  // relations that make backprop correct.
  const auto [batch, in, out_dim] = GetParam();
  Rng rng(13);
  Matrix x(batch, in);
  Matrix w(out_dim, in);
  Matrix g(batch, out_dim);
  x.fill_uniform(rng, -1.0F, 1.0F);
  w.fill_uniform(rng, -1.0F, 1.0F);
  g.fill_uniform(rng, -1.0F, 1.0F);

  Matrix y;
  matmul_xwt(x, w, y);
  const double lhs = dot(g.flat(), y.flat());

  Matrix dw(out_dim, in, 0.0F);
  accumulate_gtx(g, x, dw);
  const double rhs_w = dot(dw.flat(), w.flat());
  EXPECT_NEAR(lhs, rhs_w, 1e-3 * std::max(1.0, std::abs(lhs)));

  Matrix gx;
  matmul_gw(g, w, gx);
  const double rhs_x = dot(gx.flat(), x.flat());
  EXPECT_NEAR(lhs, rhs_x, 1e-3 * std::max(1.0, std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{2, 3, 4},
                                           std::tuple{7, 16, 5},
                                           std::tuple{32, 64, 48},
                                           std::tuple{64, 100, 128}));

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Matrix m(5, 10);
  m.fill_uniform(rng, -4.0F, 4.0F);
  softmax_rows(m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double s = 0.0;
    for (float v : m.row(r)) {
      EXPECT_GE(v, 0.0F);
      s += v;
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable) {
  Matrix a(1, 3);
  a(0, 0) = 1000.0F;
  a(0, 1) = 1001.0F;
  a(0, 2) = 1002.0F;
  softmax_rows(a);
  Matrix b(1, 3);
  b(0, 0) = 0.0F;
  b(0, 1) = 1.0F;
  b(0, 2) = 2.0F;
  softmax_rows(b);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(a(0, c), b(0, c), 1e-6F);
  }
}

TEST(Ops, ArgmaxPicksLargest) {
  std::vector<float> x{0.1F, 3.0F, -2.0F, 3.0F};
  EXPECT_EQ(argmax(x), 1u);  // first of the tied maxima
}

TEST(Ops, InTopKBasics) {
  std::vector<float> x{0.1F, 0.9F, 0.5F, 0.3F};
  EXPECT_TRUE(in_top_k(x, 1, 1));
  EXPECT_FALSE(in_top_k(x, 2, 1));
  EXPECT_TRUE(in_top_k(x, 2, 2));
  EXPECT_TRUE(in_top_k(x, 3, 3));
  EXPECT_FALSE(in_top_k(x, 0, 3));
  EXPECT_TRUE(in_top_k(x, 0, 4));
}

TEST(Ops, InTopKHandlesTies) {
  std::vector<float> x{1.0F, 1.0F, 1.0F};
  // Ties broken toward lower indices: exactly k slots are awarded.
  EXPECT_TRUE(in_top_k(x, 0, 1));
  EXPECT_FALSE(in_top_k(x, 1, 1));
  EXPECT_TRUE(in_top_k(x, 1, 2));
  EXPECT_FALSE(in_top_k(x, 2, 2));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(99);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  Rng c1_again = parent.split(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), fedbiad::CheckError);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double mean = 0.0, m2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    mean += x;
    m2 += x * x;
  }
  mean /= n;
  m2 /= n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(m2 - mean * mean, 1.0, 0.03);
}

TEST(Rng, BernoulliRate) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(37);
  std::vector<double> w{1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(Rng, CategoricalRejectsInvalidWeights) {
  Rng rng(1);
  std::vector<double> neg{1.0, -0.5};
  EXPECT_THROW(rng.categorical(neg), fedbiad::CheckError);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.categorical(zeros), fedbiad::CheckError);
  std::vector<double> empty;
  EXPECT_THROW(rng.categorical(empty), fedbiad::CheckError);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(41);
  const auto sample = rng.sample_without_replacement(20, 20);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 19u);
}

TEST(Rng, SampleWithoutReplacementPartial) {
  Rng rng(43);
  const auto sample = rng.sample_without_replacement(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), fedbiad::CheckError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

}  // namespace
}  // namespace fedbiad::tensor
