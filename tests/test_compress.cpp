// Tests for the sketched-compression module: quantizers, top-k selection,
// DGC, STC, and their wire-size accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "compress/compressor.hpp"
#include "compress/dgc.hpp"
#include "compress/quantize.hpp"
#include "compress/stc.hpp"
#include "compress/topk.hpp"
#include "nn/parameter_store.hpp"
#include "tensor/rng.hpp"
#include "wire/accounting.hpp"

namespace fedbiad::compress {
namespace {

std::vector<float> random_update(std::size_t n, std::uint64_t seed) {
  tensor::Rng rng(seed);
  std::vector<float> u(n);
  for (auto& v : u) v = static_cast<float>(rng.normal(0.0, 1.0));
  return u;
}

TEST(TopK, SelectsLargestMagnitudes) {
  std::vector<float> v{0.1F, -5.0F, 2.0F, -0.2F, 3.0F};
  const auto idx = select_top_k(v, {}, 2);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 4}));
}

TEST(TopK, RespectsPresenceMask) {
  std::vector<float> v{10.0F, -5.0F, 2.0F};
  std::vector<std::uint8_t> present{0, 1, 1};
  const auto idx = select_top_k(v, present, 1);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1}));
}

TEST(TopK, KLargerThanCandidatesReturnsAll) {
  std::vector<float> v{1.0F, 2.0F};
  const auto idx = select_top_k(v, {}, 10);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(TopK, ZeroKReturnsEmpty) {
  std::vector<float> v{1.0F};
  EXPECT_TRUE(select_top_k(v, {}, 0).empty());
}

TEST(CandidateCount, CountsMask) {
  std::vector<std::uint8_t> present{1, 0, 1, 1};
  EXPECT_EQ(candidate_count(4, present), 3u);
  EXPECT_EQ(candidate_count(4, {}), 4u);
}

TEST(FedPaq, QuantizationErrorBoundedByHalfStep) {
  const auto u = random_update(1000, 3);
  FedPaqCompressor comp;
  CompressorState state;
  const auto sparse = comp.compress(u, {}, state);
  ASSERT_TRUE(sparse.indices.empty());  // dense encoding
  float max_abs = 0.0F;
  for (const float v : u) max_abs = std::max(max_abs, std::abs(v));
  const float step = max_abs / 127.0F;
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_LE(std::abs(sparse.values[i] - u[i]), step / 2.0F + 1e-6F);
  }
}

TEST(FedPaq, WireBytesAreOneBytePerCandidate) {
  const auto u = random_update(500, 5);
  FedPaqCompressor comp;
  CompressorState state;
  EXPECT_EQ(comp.compress(u, {}, state).wire_bytes(),
            wire::int8_dense_bytes(500));
  EXPECT_EQ(wire::int8_dense_bytes(500), 500u + 4);
  std::vector<std::uint8_t> present(500, 1);
  for (std::size_t i = 0; i < 100; ++i) present[i] = 0;
  EXPECT_EQ(comp.compress(u, present, state).wire_bytes(),
            wire::int8_dense_bytes(400));
}

TEST(FedPaq, MaskedCoordinatesStayZero) {
  const auto u = random_update(100, 7);
  std::vector<std::uint8_t> present(100, 1);
  present[3] = 0;
  FedPaqCompressor comp;
  CompressorState state;
  const auto sparse = comp.compress(u, present, state);
  EXPECT_EQ(sparse.values[3], 0.0F);
}

TEST(SignSgd, TransmitsSignsTimesMeanMagnitude) {
  std::vector<float> u{1.0F, -3.0F, 2.0F, -2.0F};
  SignSgdCompressor comp;
  CompressorState state;
  const auto sparse = comp.compress(u, {}, state);
  const float scale = (1.0F + 3.0F + 2.0F + 2.0F) / 4.0F;
  EXPECT_FLOAT_EQ(sparse.values[0], scale);
  EXPECT_FLOAT_EQ(sparse.values[1], -scale);
  EXPECT_FLOAT_EQ(sparse.values[2], scale);
  EXPECT_FLOAT_EQ(sparse.values[3], -scale);
  EXPECT_EQ(sparse.wire_bytes(), wire::sign_mean_bytes(4));
  EXPECT_EQ(wire::sign_mean_bytes(4), 4u / 8 + 4 + (4 % 8 ? 1 : 0));
}

TEST(SignSgd, ThirtyTwoFoldCompression) {
  const auto u = random_update(3200, 11);
  SignSgdCompressor comp;
  CompressorState state;
  const auto sparse = comp.compress(u, {}, state);
  const double dense_bytes = 3200.0 * 4;
  EXPECT_NEAR(dense_bytes / static_cast<double>(sparse.wire_bytes()), 32.0,
              1.0);
}

TEST(Dgc, SelectsConfiguredSparsity) {
  const auto u = random_update(10000, 13);
  DgcCompressor comp({.sparsity = 0.01, .momentum = 0.0});
  CompressorState state;
  const auto sparse = comp.compress(u, {}, state);
  EXPECT_EQ(sparse.indices.size(), 100u);
  EXPECT_EQ(sparse.wire_bytes(), wire::sparse_fixed_bytes(100, 64));
  EXPECT_EQ(wire::sparse_fixed_bytes(100, 64), 100u * (4 + 8));
}

TEST(Dgc, ResidualAccumulationLosesNothing) {
  // After compression, transmitted values + residual must reconstruct the
  // full (momentum-corrected) update.
  const auto u = random_update(1000, 17);
  DgcCompressor comp({.sparsity = 0.05, .momentum = 0.0});
  CompressorState state;
  const auto sparse = comp.compress(u, {}, state);
  std::vector<float> reconstructed(state.residual);
  for (std::size_t i = 0; i < sparse.indices.size(); ++i) {
    reconstructed[sparse.indices[i]] += sparse.values[i];
  }
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(reconstructed[i], u[i], 1e-6F);
  }
}

TEST(Dgc, ResidualFlushesEventually) {
  // A coordinate with a persistent small gradient must eventually be sent.
  DgcCompressor comp({.sparsity = 0.01, .momentum = 0.0});
  CompressorState state;
  std::vector<float> u(200, 0.0F);
  u[7] = 0.01F;  // small but persistent
  u[0] = 1.0F;   // dominating coordinate
  bool sent7 = false;
  for (int round = 0; round < 200 && !sent7; ++round) {
    const auto sparse = comp.compress(u, {}, state);
    sent7 = std::find(sparse.indices.begin(), sparse.indices.end(), 7u) !=
            sparse.indices.end();
  }
  EXPECT_TRUE(sent7);
}

TEST(Dgc, MomentumAmplifiesRepeatedGradients) {
  DgcCompressor comp({.sparsity = 0.5, .momentum = 0.9});
  CompressorState state;
  std::vector<float> u{1.0F, 0.0F};
  comp.compress(u, {}, state);
  // Momentum accumulates: u + m·u + m²·u … on unsent coordinates; on sent
  // ones it resets. Just verify the state buffers exist and evolve.
  EXPECT_EQ(state.momentum.size(), 2u);
  EXPECT_EQ(state.residual.size(), 2u);
}

TEST(Dgc, RespectsPresenceMask) {
  const auto u = random_update(1000, 19);
  std::vector<std::uint8_t> present(1000, 0);
  for (std::size_t i = 0; i < 500; ++i) present[i] = 1;
  DgcCompressor comp({.sparsity = 0.1, .momentum = 0.0});
  CompressorState state;
  const auto sparse = comp.compress(u, present, state);
  EXPECT_EQ(sparse.indices.size(), 50u);  // 10% of 500 candidates
  for (const auto idx : sparse.indices) {
    EXPECT_LT(idx, 500u);
  }
}

TEST(Dgc, RejectsInvalidConfig) {
  EXPECT_THROW(DgcCompressor({.sparsity = 0.0}), fedbiad::CheckError);
  EXPECT_THROW(DgcCompressor({.sparsity = 0.1, .momentum = 1.0}),
               fedbiad::CheckError);
}

TEST(Stc, ValuesAreTernary) {
  const auto u = random_update(1000, 23);
  StcCompressor comp({.sparsity = 0.02});
  CompressorState state;
  const auto sparse = comp.compress(u, {}, state);
  ASSERT_EQ(sparse.indices.size(), 20u);
  const float mu = std::abs(sparse.values.front());
  EXPECT_GT(mu, 0.0F);
  for (const float v : sparse.values) {
    EXPECT_FLOAT_EQ(std::abs(v), mu);
  }
}

TEST(Stc, ErrorFeedbackKeepsResidual) {
  std::vector<float> u{4.0F, -2.0F, 0.1F, 0.0F};
  StcCompressor comp({.sparsity = 0.5});
  CompressorState state;
  const auto sparse = comp.compress(u, {}, state);
  // Selected: indices 0 and 1; μ = 3; residual keeps 4−3 = 1 and −2+3 = 1.
  ASSERT_EQ(sparse.indices.size(), 2u);
  EXPECT_FLOAT_EQ(sparse.values[0], 3.0F);
  EXPECT_FLOAT_EQ(sparse.values[1], -3.0F);
  EXPECT_FLOAT_EQ(state.residual[0], 1.0F);
  EXPECT_FLOAT_EQ(state.residual[1], 1.0F);
}

TEST(Stc, WireBytesUseSixtyFiveBitsPerValue) {
  const auto u = random_update(8000, 29);
  StcCompressor comp({.sparsity = 0.01});
  CompressorState state;
  const auto sparse = comp.compress(u, {}, state);
  ASSERT_EQ(sparse.indices.size(), 80u);
  EXPECT_EQ(sparse.wire_bytes(), wire::ternary_bytes(80, 64));
  EXPECT_EQ(wire::ternary_bytes(80, 64), (80u * 65 + 7) / 8 + 4);
}

TEST(SparseUpdate, MaterializeSparse) {
  SparseUpdate s;
  s.dense_size = 5;
  s.indices = {1, 3};
  s.values = {2.0F, -4.0F};
  std::vector<float> out(5, 9.0F);
  std::vector<std::uint8_t> present(5, 9);
  s.materialize(out, present);
  EXPECT_EQ(out, (std::vector<float>{0, 2.0F, 0, -4.0F, 0}));
  EXPECT_EQ(present, (std::vector<std::uint8_t>{0, 1, 0, 1, 0}));
}

TEST(SparseUpdate, MaterializeDense) {
  SparseUpdate s;
  s.dense_size = 3;
  s.values = {1.0F, 2.0F, 3.0F};
  std::vector<float> out(3);
  std::vector<std::uint8_t> present(3, 0);
  s.materialize(out, present);
  EXPECT_EQ(out, (std::vector<float>{1.0F, 2.0F, 3.0F}));
  EXPECT_EQ(present, (std::vector<std::uint8_t>{1, 1, 1}));
}

class SparsitySweep : public ::testing::TestWithParam<double> {};

TEST_P(SparsitySweep, DgcWireSizeScalesLinearly) {
  const double q = GetParam();
  const auto u = random_update(20000, 31);
  DgcCompressor comp({.sparsity = q, .momentum = 0.0});
  CompressorState state;
  const auto sparse = comp.compress(u, {}, state);
  const auto expected_k = static_cast<std::size_t>(
      std::llround(q * 20000.0));
  EXPECT_EQ(sparse.indices.size(), std::max<std::size_t>(1, expected_k));
  EXPECT_EQ(sparse.wire_bytes(), sparse.indices.size() * 12);
}

INSTANTIATE_TEST_SUITE_P(Rates, SparsitySweep,
                         ::testing::Values(0.0001, 0.001, 0.01, 0.1));

// --- wire cross-checks: the server-side decoder must reconstruct exactly
// what materialize() (the in-memory reference) produces, and the measured
// payload must match the analytic accounting for every compressor ---

nn::ParameterStore flat_layout(std::size_t n) {
  nn::ParameterStore store;
  store.add_group("w", nn::GroupKind::kDense, n, 1, true);
  store.finalize();
  return store;
}

TEST(WireCrossCheck, DecodeMatchesMaterializeForEveryCompressor) {
  const std::size_t n = 600;
  const auto layout = flat_layout(n);
  const auto u = random_update(n, 37);
  const std::vector<std::shared_ptr<UpdateCompressor>> compressors{
      std::make_shared<DgcCompressor>(DgcConfig{.sparsity = 0.05}),
      std::make_shared<StcCompressor>(StcConfig{.sparsity = 0.05}),
      std::make_shared<FedPaqCompressor>(),
      std::make_shared<SignSgdCompressor>(),
  };
  for (const auto& comp : compressors) {
    CompressorState state;
    const SparseUpdate sparse = comp->compress(u, {}, state);
    std::vector<float> ref(n);
    std::vector<std::uint8_t> ref_mask(n);
    sparse.materialize(ref, ref_mask);
    const wire::Decoded dec = wire::decode_update(layout, sparse.payload);
    ASSERT_EQ(dec.values.size(), n) << comp->name();
    EXPECT_EQ(dec.present, wire::Bitset::from_bytemask(ref_mask))
        << comp->name();
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(dec.values[i], ref[i])
          << comp->name() << " coordinate " << i;
    }
  }
}

TEST(WireCrossCheck, MeasuredBytesMatchOracleForEveryCompressor) {
  const std::size_t n = 1000;
  const auto u = random_update(n, 41);
  CompressorState state;
  {
    DgcCompressor dgc({.sparsity = 0.01, .momentum = 0.0});
    const auto s = dgc.compress(u, {}, state);
    EXPECT_EQ(s.payload.size(), wire::sparse_fixed_bytes(s.indices.size(), 64));
  }
  {
    CompressorState st;
    StcCompressor stc({.sparsity = 0.01});
    const auto s = stc.compress(u, {}, st);
    EXPECT_EQ(s.payload.size(), wire::ternary_bytes(s.indices.size(), 64));
  }
  {
    CompressorState st;
    FedPaqCompressor paq;
    EXPECT_EQ(paq.compress(u, {}, st).payload.size(),
              wire::int8_dense_bytes(n));
  }
  {
    CompressorState st;
    SignSgdCompressor sgn;
    EXPECT_EQ(sgn.compress(u, {}, st).payload.size(),
              wire::sign_mean_bytes(n));
  }
}

}  // namespace
}  // namespace fedbiad::compress
