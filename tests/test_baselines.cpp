// Tests for the baseline strategies: FedAvg, FedDrop, AFD, FedMP, FjORD,
// HeteroFL, and the width-plan machinery they share.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "baselines/afd.hpp"
#include "baselines/fedavg.hpp"
#include "baselines/feddrop.hpp"
#include "baselines/fedmp.hpp"
#include "baselines/fjord.hpp"
#include "baselines/heterofl.hpp"
#include "baselines/unit_mask.hpp"
#include "common/check.hpp"
#include "core/drop_pattern.hpp"
#include "data/image_synth.hpp"
#include "data/text_synth.hpp"
#include "nn/lstm_lm_model.hpp"
#include "nn/mlp_model.hpp"

namespace fedbiad::baselines {
namespace {

/// Runs one client and then performs the server-side decode step exactly as
/// the engines do on upload arrival, so tests can inspect the dense view.
template <typename Strat>
fl::ClientOutcome run_decoded(Strat& strat, fl::ClientContext& ctx) {
  auto out = strat.run_client(ctx);
  fl::decode_outcome(strat, ctx.model.store(), out);
  return out;
}

struct ImageHarness {
  explicit ImageHarness(std::uint64_t seed = 5) {
    auto cfg = data::ImageSynthConfig::mnist_like(seed);
    cfg.train_samples = 80;
    cfg.test_samples = 10;
    cfg.height = 10;
    cfg.width = 10;
    datasets = data::make_image_datasets(cfg);
    model = std::make_unique<nn::MlpModel>(
        nn::MlpConfig{.input = 100, .hidden = 12, .classes = 10});
    tensor::Rng init(seed);
    model->init_params(init);
    shard.resize(datasets.train->size());
    for (std::size_t i = 0; i < shard.size(); ++i) shard[i] = i;
    settings.local_iterations = 6;
    settings.batch_size = 8;
    settings.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 0.0F};
    global.assign(model->store().params().begin(),
                  model->store().params().end());
  }

  fl::ClientContext context(std::size_t client, std::size_t round) {
    return fl::ClientContext{.client_id = client,
                             .round = round,
                             .model = *model,
                             .global_params = global,
                             .dataset = *datasets.train,
                             .shard = shard,
                             .settings = settings,
                             .rng = tensor::Rng(round * 7919 + client)};
  }

  data::ImageDatasets datasets;
  std::unique_ptr<nn::MlpModel> model;
  std::vector<std::size_t> shard;
  fl::TrainSettings settings;
  std::vector<float> global;
};

struct TextHarness {
  explicit TextHarness(std::uint64_t seed = 6) {
    auto cfg = data::TextSynthConfig::ptb_like(seed);
    cfg.vocab = 40;
    cfg.train_sequences = 60;
    cfg.test_sequences = 10;
    cfg.seq_len = 6;
    datasets = data::make_text_datasets_iid(cfg, 3);
    model = std::make_unique<nn::LstmLmModel>(nn::LstmLmConfig{
        .vocab = 40, .embed = 8, .hidden = 10, .layers = 2});
    tensor::Rng init(seed);
    model->init_params(init);
    shard = datasets.client_indices[0];
    settings.local_iterations = 4;
    settings.batch_size = 4;
    settings.topk = 3;
    settings.sgd = {.lr = 0.5F, .weight_decay = 0.0F, .clip_norm = 5.0F};
    global.assign(model->store().params().begin(),
                  model->store().params().end());
  }

  fl::ClientContext context(std::size_t client, std::size_t round) {
    return fl::ClientContext{.client_id = client,
                             .round = round,
                             .model = *model,
                             .global_params = global,
                             .dataset = *datasets.train,
                             .shard = shard,
                             .settings = settings,
                             .rng = tensor::Rng(round * 104729 + client)};
  }

  data::TextDatasets datasets;
  std::unique_ptr<nn::LstmLmModel> model;
  std::vector<std::size_t> shard;
  fl::TrainSettings settings;
  std::vector<float> global;
};

TEST(FedAvg, UploadsFullDenseModel) {
  ImageHarness h;
  FedAvgStrategy strat;
  auto ctx = h.context(0, 1);
  const auto out = run_decoded(strat, ctx);
  EXPECT_EQ(out.uplink_bytes, h.model->store().size() * 4);
  EXPECT_TRUE(std::all_of(out.present.begin(), out.present.end(),
                          [](std::uint8_t p) { return p == 1; }));
  EXPECT_FALSE(out.is_update);
}

TEST(FedAvg, TrainingChangesParameters) {
  ImageHarness h;
  FedAvgStrategy strat;
  auto ctx = h.context(0, 1);
  const auto out = run_decoded(strat, ctx);
  double delta = 0.0;
  for (std::size_t i = 0; i < out.values.size(); ++i) {
    delta += std::abs(out.values[i] - h.global[i]);
  }
  EXPECT_GT(delta, 0.0);
}

TEST(FedDrop, RejectsInvalidRate) {
  EXPECT_THROW(FedDropStrategy(1.0), fedbiad::CheckError);
  EXPECT_THROW(FedDropStrategy(-0.1), fedbiad::CheckError);
}

TEST(FedDrop, DropsFcRowsOnMlp) {
  ImageHarness h;
  FedDropStrategy strat(0.5);
  auto ctx = h.context(0, 1);
  const auto out = run_decoded(strat, ctx);
  const double dense =
      static_cast<double>(core::dense_model_bytes(h.model->store()));
  EXPECT_NEAR(static_cast<double>(out.uplink_bytes) / dense, 0.5, 0.05);
}

TEST(FedDrop, NeverDropsRecurrentRowsOnLstm) {
  TextHarness h;
  FedDropStrategy strat(0.5);
  auto ctx = h.context(0, 1);
  const auto out = run_decoded(strat, ctx);
  const auto& store = h.model->store();
  // Every recurrent coordinate must be present.
  for (const auto& grp : store.groups()) {
    if (!nn::is_recurrent(grp.kind)) continue;
    for (std::size_t i = grp.offset; i < grp.offset + grp.size(); ++i) {
      ASSERT_EQ(out.present[i], 1) << "recurrent coordinate dropped";
    }
  }
  // Save ratio is therefore far below 2× — the paper's observation that
  // FedDrop compresses RNN models poorly.
  const double dense =
      static_cast<double>(core::dense_model_bytes(store));
  EXPECT_GT(static_cast<double>(out.uplink_bytes) / dense, 0.6);
}

TEST(FedDrop, DifferentClientsGetDifferentPatterns) {
  ImageHarness h;
  FedDropStrategy strat(0.5);
  auto ctx0 = h.context(0, 1);
  const auto out0 = run_decoded(strat, ctx0);
  auto ctx1 = h.context(1, 1);
  const auto out1 = run_decoded(strat, ctx1);
  EXPECT_NE(out0.present, out1.present);
}

TEST(Afd, AllClientsShareTheRoundPattern) {
  ImageHarness h;
  AfdStrategy strat(0.5);
  strat.begin_round(1, h.global);
  auto ctx0 = h.context(0, 1);
  const auto out0 = run_decoded(strat, ctx0);
  auto ctx1 = h.context(1, 1);
  const auto out1 = run_decoded(strat, ctx1);
  EXPECT_EQ(out0.present, out1.present);
}

TEST(Afd, ScoresUpdateFromAggregatedDelta) {
  ImageHarness h;
  AfdStrategy strat(0.5, 0.0, 0.0);  // no momentum/exploration: pure |Δ|
  strat.begin_round(1, h.global);
  auto ctx = h.context(0, 1);
  strat.run_client(ctx);
  std::vector<float> new_global = h.global;
  new_global[0] += 1.0F;  // move only coordinates of row 0
  strat.end_round(1, h.global, new_global);
  const auto& scores = strat.row_scores();
  ASSERT_FALSE(scores.empty());
  EXPECT_GT(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
}

TEST(Afd, SecondRoundDropsLowScoredRows) {
  ImageHarness h;
  AfdStrategy strat(0.5, 0.0, 0.0);
  strat.begin_round(1, h.global);
  auto ctx = h.context(0, 1);
  strat.run_client(ctx);
  // Craft a delta that makes the first half of fc1's rows clearly active.
  std::vector<float> new_global = h.global;
  const auto& store = h.model->store();
  const auto& fc1 = store.group(h.model->fc1_group());
  for (std::size_t r = 0; r < fc1.rows / 2; ++r) {
    for (std::size_t c = 0; c < fc1.row_len; ++c) {
      new_global[fc1.offset + r * fc1.row_len + c] += 1.0F;
    }
  }
  strat.end_round(1, h.global, new_global);
  strat.begin_round(2, h.global);
  auto ctx2 = h.context(1, 2);
  const auto out = run_decoded(strat, ctx2);
  // Active rows must be kept.
  for (std::size_t r = 0; r < fc1.rows / 2; ++r) {
    ASSERT_EQ(out.present[fc1.offset + r * fc1.row_len], 1)
        << "active row " << r << " was dropped";
  }
}

TEST(FedMp, PrunesSmallestMagnitudes) {
  ImageHarness h;
  FedMpStrategy strat(0.5);
  auto ctx = h.context(0, 1);
  const auto out = run_decoded(strat, ctx);
  const std::size_t absent = static_cast<std::size_t>(
      std::count(out.present.begin(), out.present.end(), std::uint8_t{0}));
  EXPECT_NEAR(static_cast<double>(absent) /
                  static_cast<double>(out.present.size()),
              0.5, 0.02);
  // Present values must dominate absent ones in magnitude: compare the
  // maximum pruned magnitude against the minimum kept magnitude.
  float max_pruned = 0.0F;
  float min_kept = 1e9F;
  auto params = h.model->store().params();
  for (std::size_t i = 0; i < out.present.size(); ++i) {
    if (out.present[i] == 0) {
      max_pruned = std::max(max_pruned, std::abs(params[i]));
    } else {
      min_kept = std::min(min_kept, std::abs(params[i]));
    }
  }
  EXPECT_LE(max_pruned, min_kept + 1e-6F);
}

TEST(FedMp, ZeroRateKeepsEverything) {
  ImageHarness h;
  FedMpStrategy strat(0.0);
  auto ctx = h.context(0, 1);
  const auto out = run_decoded(strat, ctx);
  EXPECT_TRUE(std::all_of(out.present.begin(), out.present.end(),
                          [](std::uint8_t p) { return p == 1; }));
}

TEST(FedMp, UploadAccountsPositions) {
  ImageHarness h;
  FedMpStrategy strat(0.5);
  auto ctx = h.context(0, 1);
  const auto out = run_decoded(strat, ctx);
  const std::size_t n = h.model->store().size();
  // ≈ half the values at 4 bytes plus the 1-bit occupancy bitmap (cheaper
  // than 16-bit positions at this rate).
  EXPECT_NEAR(static_cast<double>(out.uplink_bytes),
              0.5 * static_cast<double>(n) * 4.0 + n / 8.0,
              0.05 * static_cast<double>(n) * 4.0);
}

TEST(WidthPlan, MlpMaskCutsRowsAndColumns) {
  nn::MlpModel model({.input = 6, .hidden = 4, .classes = 3});
  const auto plan = WidthPlan::for_mlp(model);
  const auto& store = model.store();
  std::vector<std::uint8_t> present(store.size(), 1);
  plan.build_mask(store, 0.5, present);
  const auto& fc1 = store.group(model.fc1_group());
  const auto& fc2 = store.group(model.fc2_group());
  // Hidden units 2,3 cut: their fc1 rows are absent.
  EXPECT_EQ(present[fc1.offset + 1 * fc1.row_len], 1);
  EXPECT_EQ(present[fc1.offset + 2 * fc1.row_len], 0);
  EXPECT_EQ(present[fc1.offset + 3 * fc1.row_len], 0);
  // fc2 columns 2,3 cut in every row; bias column (index 4) kept.
  for (std::size_t r = 0; r < fc2.rows; ++r) {
    EXPECT_EQ(present[fc2.offset + r * fc2.row_len + 1], 1);
    EXPECT_EQ(present[fc2.offset + r * fc2.row_len + 2], 0);
    EXPECT_EQ(present[fc2.offset + r * fc2.row_len + 3], 0);
    EXPECT_EQ(present[fc2.offset + r * fc2.row_len + 4], 1);
  }
}

TEST(WidthPlan, FullRatioMasksNothing) {
  nn::MlpModel model({.input = 6, .hidden = 4, .classes = 3});
  const auto plan = WidthPlan::for_mlp(model);
  std::vector<std::uint8_t> present(model.store().size(), 1);
  plan.build_mask(model.store(), 1.0, present);
  EXPECT_TRUE(std::all_of(present.begin(), present.end(),
                          [](std::uint8_t p) { return p == 1; }));
}

TEST(WidthPlan, SubModelsAreNested) {
  // Ordered dropout's defining property: a narrower sub-model is contained
  // in every wider one.
  nn::LstmLmModel model({.vocab = 30, .embed = 8, .hidden = 8, .layers = 2});
  const auto plan = WidthPlan::for_lstm_lm(model);
  const auto& store = model.store();
  std::vector<std::uint8_t> narrow(store.size(), 1);
  std::vector<std::uint8_t> wide(store.size(), 1);
  plan.build_mask(store, 0.25, narrow);
  plan.build_mask(store, 0.75, wide);
  for (std::size_t i = 0; i < store.size(); ++i) {
    if (narrow[i] == 1) {
      ASSERT_EQ(wide[i], 1) << "narrow sub-model not nested at " << i;
    }
  }
}

TEST(WidthPlan, LstmUnitRowsAndRecurrentColumnsCut) {
  nn::LstmLmModel model({.vocab = 30, .embed = 8, .hidden = 8, .layers = 1});
  const auto plan = WidthPlan::for_lstm_lm(model);
  const auto& store = model.store();
  std::vector<std::uint8_t> present(store.size(), 1);
  plan.build_mask(store, 0.5, present);
  const auto& unit = store.group(model.unit_group(0));
  const auto& layer = model.lstm_layer(0);
  // Units 4..7 cut: their rows are fully absent.
  EXPECT_EQ(present[unit.offset + 2 * unit.row_len], 1);
  EXPECT_EQ(present[unit.offset + 6 * unit.row_len], 0);
  // Surviving unit 0's recurrent weights reading cut unit 6 are absent,
  // those reading surviving unit 2 are present — in all four gates.
  for (std::size_t gate = 0; gate < 4; ++gate) {
    EXPECT_EQ(present[unit.offset + 0 * unit.row_len +
                      layer.wh_offset(gate) + 2], 1);
    EXPECT_EQ(present[unit.offset + 0 * unit.row_len +
                      layer.wh_offset(gate) + 6], 0);
  }
}

TEST(WidthPlan, BytesShrinkWithRatio) {
  nn::LstmLmModel model({.vocab = 30, .embed = 8, .hidden = 8, .layers = 2});
  const auto plan = WidthPlan::for_lstm_lm(model);
  const auto full = plan.submodel_bytes(model.store(), 1.0);
  const auto half = plan.submodel_bytes(model.store(), 0.5);
  const auto quarter = plan.submodel_bytes(model.store(), 0.25);
  EXPECT_GT(full, half);
  EXPECT_GT(half, quarter);
}

TEST(Fjord, UploadsOnlySubmodel) {
  ImageHarness h;
  const auto plan = WidthPlan::for_mlp(*h.model);
  FjordStrategy strat(plan, 0.5);
  EXPECT_DOUBLE_EQ(strat.width_ratio(), 0.5);
  auto ctx = h.context(0, 1);
  const auto out = run_decoded(strat, ctx);
  EXPECT_EQ(out.uplink_bytes, plan.submodel_bytes(h.model->store(), 0.5));
  // Cut coordinates are absent and zero-valued.
  for (std::size_t i = 0; i < out.present.size(); ++i) {
    if (out.present[i] == 0) {
      EXPECT_EQ(out.values[i], 0.0F);
    }
  }
}

TEST(Fjord, SamePatternForAllClients) {
  ImageHarness h;
  FjordStrategy strat(WidthPlan::for_mlp(*h.model), 0.5);
  auto ctx0 = h.context(0, 1);
  const auto out0 = run_decoded(strat, ctx0);
  auto ctx1 = h.context(5, 1);
  const auto out1 = run_decoded(strat, ctx1);
  EXPECT_EQ(out0.present, out1.present);  // ordered dropout is deterministic
}

TEST(HeteroFl, LevelsAssignByClientId) {
  ImageHarness h;
  const auto plan = WidthPlan::for_mlp(*h.model);
  HeteroFlStrategy strat(plan, {1.0, 0.5});
  auto ctx0 = h.context(0, 1);  // level 1.0
  const auto out0 = run_decoded(strat, ctx0);
  auto ctx1 = h.context(1, 1);  // level 0.5
  const auto out1 = run_decoded(strat, ctx1);
  EXPECT_GT(out0.uplink_bytes, out1.uplink_bytes);
  // Full-width client transmits everything.
  EXPECT_TRUE(std::all_of(out0.present.begin(), out0.present.end(),
                          [](std::uint8_t p) { return p == 1; }));
}

TEST(HeteroFl, DefaultLevelsAreValid) {
  for (const double p : {0.1, 0.5, 0.7}) {
    const auto levels = HeteroFlStrategy::default_levels(p);
    ASSERT_EQ(levels.size(), 3u);
    for (const double s : levels) {
      EXPECT_GT(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(HeteroFl, RejectsEmptyOrInvalidLevels) {
  nn::MlpModel model({.input = 4, .hidden = 4, .classes = 2});
  const auto plan = WidthPlan::for_mlp(model);
  EXPECT_THROW(HeteroFlStrategy(plan, {}), fedbiad::CheckError);
  EXPECT_THROW(HeteroFlStrategy(plan, {0.0}), fedbiad::CheckError);
  EXPECT_THROW(HeteroFlStrategy(plan, {1.5}), fedbiad::CheckError);
}

}  // namespace
}  // namespace fedbiad::baselines
