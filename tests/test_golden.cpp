// Golden-trace regression tests: a small fixed scenario is run for FedBIAD
// and every baseline strategy, and the per-round loss/accuracy/traffic
// trajectory is compared against JSON files checked in under tests/golden/.
// Strategy-level regressions surface here without rerunning full benches.
//
// Regenerate after an intentional trajectory change with
//   FEDBIAD_UPDATE_GOLDEN=1 ./tests/test_golden
// and commit the diff under tests/golden/ (review it — every changed number
// is a behaviour change).
//
// The same files double as the acceptance gate for the event-driven engine:
// AsyncSimulation in barrier mode must reproduce them bit for bit.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>

#include "baselines/afd.hpp"
#include "baselines/fedavg.hpp"
#include "baselines/feddrop.hpp"
#include "baselines/fedmp.hpp"
#include "baselines/fjord.hpp"
#include "baselines/heterofl.hpp"
#include "baselines/unit_mask.hpp"
#include "compress/compressed_strategy.hpp"
#include "compress/dgc.hpp"
#include "core/fedbiad_strategy.hpp"
#include "data/image_synth.hpp"
#include "data/partition.hpp"
#include "fl/async_simulation.hpp"
#include "fl/simulation.hpp"
#include "golden_util.hpp"
#include "netsim/client_profile.hpp"
#include "nn/mlp_model.hpp"
#include "scenario/config.hpp"
#include "scenario/model.hpp"

#ifndef FEDBIAD_GOLDEN_DIR
#error "FEDBIAD_GOLDEN_DIR must point at tests/golden"
#endif
#ifndef FEDBIAD_SCENARIO_DIR
#error "FEDBIAD_SCENARIO_DIR must point at tests/scenarios"
#endif

namespace fedbiad::testing {
namespace {

constexpr const char* kScenario = "mlp-shards-6c-4r";
// Golden-file comparisons tolerate build-variant float drift: the GEMM
// kernels' summation order and FMA contraction differ across the portable
// tile, -O0 (asan preset), and the x86-64-v3 path that generated the files,
// moving trajectories by up to ~6e-8 relative over this scenario. 1e-6
// keeps ~20× headroom over that while staying orders of magnitude below
// any genuine algorithmic regression. Engine-vs-engine equivalence is
// checked bit-for-bit separately — both runs share one build.
constexpr double kRelTol = 1e-6;

struct Scenario {
  fl::SimulationConfig sim;
  data::DatasetPtr train;
  data::DatasetPtr test;
  data::Partition partition;
  nn::ModelFactory factory;
  nn::MlpConfig model_cfg;
};

Scenario make_scenario() {
  Scenario sc;
  sc.sim.rounds = 4;
  sc.sim.selection_fraction = 0.5;  // 3 of 6 clients per round
  sc.sim.train.local_iterations = 4;
  sc.sim.train.batch_size = 8;
  sc.sim.train.sgd = {.lr = 0.1F, .weight_decay = 0.0F, .clip_norm = 5.0F};
  sc.sim.seed = 17;
  sc.sim.threads = 2;
  sc.sim.eval_every = 1;

  auto img_cfg = data::ImageSynthConfig::mnist_like(23);
  img_cfg.train_samples = 120;
  img_cfg.test_samples = 40;
  img_cfg.height = 10;
  img_cfg.width = 10;
  const auto datasets = data::make_image_datasets(img_cfg);
  sc.train = datasets.train;
  sc.test = datasets.test;
  tensor::Rng prng(29);
  sc.partition = data::partition_shards(*datasets.train, 6, 2, prng);
  sc.model_cfg = nn::MlpConfig{.input = 100, .hidden = 16, .classes = 10};
  const auto model_cfg = sc.model_cfg;
  sc.factory = [model_cfg] {
    return std::make_unique<nn::MlpModel>(model_cfg);
  };
  return sc;
}

fl::StrategyPtr make_strategy(const std::string& name, const Scenario& sc) {
  constexpr double p = 0.5;
  nn::MlpModel probe(sc.model_cfg);
  const auto plan = baselines::WidthPlan::for_mlp(probe);
  const core::FedBiadConfig biad{
      .dropout_rate = p, .tau = 2, .stage_boundary = 3};
  if (name == "FedAvg") return std::make_shared<baselines::FedAvgStrategy>();
  if (name == "FedDrop") {
    return std::make_shared<baselines::FedDropStrategy>(p);
  }
  if (name == "AFD") return std::make_shared<baselines::AfdStrategy>(p);
  if (name == "FedMP") return std::make_shared<baselines::FedMpStrategy>(p);
  if (name == "FjORD") {
    return std::make_shared<baselines::FjordStrategy>(plan, p);
  }
  if (name == "HeteroFL") {
    return std::make_shared<baselines::HeteroFlStrategy>(
        plan, baselines::HeteroFlStrategy::default_levels(p));
  }
  if (name == "FedBIAD") {
    return std::make_shared<core::FedBiadStrategy>(biad);
  }
  if (name == "FedBIAD+DGC") {
    return std::make_shared<compress::ComposedStrategy>(
        std::make_shared<core::FedBiadStrategy>(biad),
        std::make_shared<compress::DgcCompressor>(
            compress::DgcConfig{.sparsity = 0.01}));
  }
  ADD_FAILURE() << "unknown golden strategy " << name;
  return nullptr;
}

std::string golden_path(const std::string& strategy) {
  std::string slug;
  for (const char c : strategy) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else {
      slug.push_back('_');
    }
  }
  return std::string(FEDBIAD_GOLDEN_DIR) + "/" + slug + ".json";
}

bool update_mode() {
  const char* v = std::getenv("FEDBIAD_UPDATE_GOLDEN");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

void expect_near_rel(double actual, double expected, const char* field,
                     std::size_t round) {
  const double tol = kRelTol * std::max(1.0, std::abs(expected));
  EXPECT_NEAR(actual, expected, tol)
      << field << " diverged at round " << round;
}

void expect_matches(const GoldenTrace& actual, const GoldenTrace& golden) {
  EXPECT_EQ(actual.strategy, golden.strategy);
  EXPECT_EQ(actual.scenario, golden.scenario);
  ASSERT_EQ(actual.rounds.size(), golden.rounds.size());
  for (std::size_t i = 0; i < golden.rounds.size(); ++i) {
    const GoldenRound& a = actual.rounds[i];
    const GoldenRound& g = golden.rounds[i];
    EXPECT_EQ(a.round, g.round);
    EXPECT_EQ(a.participants, g.participants);
    EXPECT_EQ(a.uplink_total, g.uplink_total) << "round " << g.round;
    EXPECT_EQ(a.uplink_max, g.uplink_max) << "round " << g.round;
    EXPECT_EQ(a.downlink, g.downlink) << "round " << g.round;
    expect_near_rel(a.train_loss, g.train_loss, "train_loss", g.round);
    expect_near_rel(a.test_loss, g.test_loss, "test_loss", g.round);
    expect_near_rel(a.top1, g.top1, "top1", g.round);
    expect_near_rel(a.topk, g.topk, "topk", g.round);
    // Scenario accounting is integral and deterministic: exact, and 0 in
    // every pre-scenario golden (hook-free engines report 0 too).
    EXPECT_EQ(a.abandoned, g.abandoned) << "round " << g.round;
    EXPECT_EQ(a.wasted_uplink, g.wasted_uplink) << "round " << g.round;
  }
}

class GoldenSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenSuite, SyncEngineMatchesGolden) {
  const std::string name = GetParam();
  Scenario sc = make_scenario();
  fl::Simulation sim(sc.sim, sc.factory, sc.train, sc.test, sc.partition,
                     make_strategy(name, sc));
  const auto trace = to_trace(sim.run(), kScenario);
  const std::string path = golden_path(name);
  if (update_mode()) {
    write_golden(path, trace);
    SUCCEED() << "regenerated " << path;
    return;
  }
  expect_matches(trace, read_golden(path));
}

void expect_bit_identical(const GoldenTrace& a, const GoldenTrace& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < b.rounds.size(); ++i) {
    const GoldenRound& x = a.rounds[i];
    const GoldenRound& g = b.rounds[i];
    EXPECT_EQ(x.uplink_total, g.uplink_total) << "round " << g.round;
    EXPECT_EQ(x.uplink_max, g.uplink_max) << "round " << g.round;
    EXPECT_EQ(x.downlink, g.downlink) << "round " << g.round;
    EXPECT_EQ(x.train_loss, g.train_loss) << "round " << g.round;
    EXPECT_EQ(x.test_loss, g.test_loss) << "round " << g.round;
    EXPECT_EQ(x.top1, g.top1) << "round " << g.round;
    EXPECT_EQ(x.topk, g.topk) << "round " << g.round;
  }
}

// Acceptance: the event-driven engine in barrier mode over a homogeneous
// fleet reproduces the legacy sync trajectories bit for bit on the golden
// scenarios — every float of every strategy's trajectory compares with ==
// between the two in-process runs. The checked-in file is additionally
// checked at kRelTol (both engines must stay pinned to it).
TEST_P(GoldenSuite, BarrierEngineMatchesGoldenBitForBit) {
  if (update_mode()) GTEST_SKIP() << "regenerating from the sync engine";
  const std::string name = GetParam();
  Scenario sc = make_scenario();
  fl::Simulation sync(sc.sim, sc.factory, sc.train, sc.test, sc.partition,
                      make_strategy(name, sc));
  const auto sync_trace = to_trace(sync.run(), kScenario);
  fl::AsyncSimulationConfig acfg;
  acfg.base = sc.sim;
  acfg.mode = fl::AggregationMode::kBarrier;
  fl::AsyncSimulation sim(acfg, sc.factory, sc.train, sc.test, sc.partition,
                          make_strategy(name, sc));
  const auto trace = to_trace(sim.run(), kScenario);
  expect_bit_identical(trace, sync_trace);
  expect_matches(trace, read_golden(golden_path(name)));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, GoldenSuite,
                         ::testing::Values("FedAvg", "FedDrop", "AFD",
                                           "FedMP", "FjORD", "HeteroFL",
                                           "FedBIAD", "FedBIAD+DGC"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// --- Scenario goldens -----------------------------------------------------
//
// The same fixture run through the event-driven engine under a checked-in
// scenario config (heterogeneous fleet, barrier mode): pins the full
// churn/deadline trajectory — including the abandoned/wasted ledger — at
// kRelTol. Regenerate with FEDBIAD_UPDATE_GOLDEN=1 like the plain goldens.

struct ScenarioGoldenCase {
  const char* strategy;
  const char* scenario;
};

netsim::HeterogeneityConfig golden_fleet() {
  netsim::HeterogeneityConfig h;
  h.compute_spread = 6.0;
  h.bandwidth_spread = 3.0;
  h.straggler_fraction = 0.3;
  h.straggler_multiplier = 4.0;
  return h;
}

std::string scenario_golden_path(const ScenarioGoldenCase& c) {
  std::string slug;
  for (const char* p = c.strategy; *p != '\0'; ++p) {
    const auto u = static_cast<unsigned char>(*p);
    slug.push_back(std::isalnum(u) ? static_cast<char>(std::tolower(u)) : '_');
  }
  return std::string(FEDBIAD_GOLDEN_DIR) + "/scenario_" + slug + "_" +
         c.scenario + ".json";
}

class ScenarioGoldenSuite
    : public ::testing::TestWithParam<ScenarioGoldenCase> {};

TEST_P(ScenarioGoldenSuite, BarrierScenarioMatchesGolden) {
  const ScenarioGoldenCase c = GetParam();
  Scenario sc = make_scenario();
  const scenario::Config cfg = scenario::Config::load(
      std::string(FEDBIAD_SCENARIO_DIR) + "/" + c.scenario + ".json");
  fl::AsyncSimulationConfig acfg;
  acfg.base = sc.sim;
  acfg.mode = fl::AggregationMode::kBarrier;
  acfg.heterogeneity = golden_fleet();
  acfg.hooks = scenario::make_engine_hooks(cfg, sc.partition.size());
  acfg.scenario_name = cfg.name;
  fl::AsyncSimulation sim(acfg, sc.factory, sc.train, sc.test, sc.partition,
                          make_strategy(c.strategy, sc));
  const auto trace = to_trace(sim.run(), cfg.name);
  const std::string path = scenario_golden_path(c);
  if (update_mode()) {
    write_golden(path, trace);
    SUCCEED() << "regenerated " << path;
    return;
  }
  expect_matches(trace, read_golden(path));
}

INSTANTIATE_TEST_SUITE_P(
    ChurnAndDeadline, ScenarioGoldenSuite,
    ::testing::Values(ScenarioGoldenCase{"FedAvg", "churn_heavy"},
                      ScenarioGoldenCase{"FedAvg", "deadline_tight"},
                      ScenarioGoldenCase{"FedBIAD", "churn_heavy"},
                      ScenarioGoldenCase{"FedBIAD", "deadline_tight"}),
    [](const auto& info) {
      return std::string(info.param.strategy) + "_" + info.param.scenario;
    });

}  // namespace
}  // namespace fedbiad::testing
